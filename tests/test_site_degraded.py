"""Unit tests for degraded-mode serving and token reservation.

When a redistribution round cannot terminate (unreachable majority /
participants), the site serves best-effort: its pooled contribution is
reserved, fresh release inflow is spendable, and late decisions apply as
deltas.  These tests pin that machinery directly.
"""

from repro.core.avantan.state import AcceptValue, Ballot
from repro.core.config import AvantanVariant
from repro.core.entity import SiteTokenState
from repro.core.messages import ForwardedRequest
from repro.core.requests import ClientRequest, RequestKind

from tests.helpers import MiniCluster, acquire_burst


def forwarded(site, kind, amount):
    request = ClientRequest(
        kind=kind, entity_id="VM", amount=amount,
        client="c", region=site.region.value,
    )
    manager_name = f"am-{site.region.value}"
    return ForwardedRequest(request, reply_to=manager_name)


def freeze_with_value(mini, site, pooled):
    """Put ``site`` into a degraded round holding a value that pools
    ``pooled`` of its tokens."""
    others = [s for s in mini.sites if s is not site][:1]
    value = AcceptValue(
        value_id=Ballot(9, site.name),
        entity_id="VM",
        states=(
            SiteTokenState(site.name, "VM", pooled, 0),
            SiteTokenState(others[0].name, "VM", 40, 0),
        ),
    )
    protocol = site.protocol
    protocol.state.ballot_num = value.value_id
    protocol.state.accept_val = value
    protocol.state.accept_num = value.value_id
    from repro.core.avantan.base import Phase, Role

    protocol.role = Role.COHORT
    protocol.phase = Phase.ACCEPT
    protocol._enter_degraded()
    return value


class TestReservedTokens:
    def test_idle_site_reserves_nothing(self):
        mini = MiniCluster(maximum=300)
        assert mini.site(0)._reserved_tokens() == 0
        assert mini.site(0)._available_tokens() == 100

    def test_degraded_site_reserves_pooled_share(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        freeze_with_value(mini, site, pooled=100)
        assert site._reserved_tokens() == 100
        assert site._available_tokens() == 0

    def test_release_inflow_is_spendable_while_degraded(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        freeze_with_value(mini, site, pooled=100)
        site._handle_client(forwarded(site, RequestKind.RELEASE, 30))
        assert site._available_tokens() == 30
        site._handle_client(forwarded(site, RequestKind.ACQUIRE, 20))
        assert site.state.tokens_left == 110
        assert site._available_tokens() == 10

    def test_acquire_beyond_surplus_rejected_fast_while_degraded(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        freeze_with_value(mini, site, pooled=100)
        site._handle_client(forwarded(site, RequestKind.ACQUIRE, 50))
        assert site.counters["rejected"] == 1
        assert not site._pending  # never queued
        assert site.state.tokens_left == 100  # reserve untouched


class TestDeltaApply:
    def test_late_decision_keeps_surplus(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        value = freeze_with_value(mini, site, pooled=100)
        # 30 fresh tokens arrive while blocked; 10 get spent.
        site._handle_client(forwarded(site, RequestKind.RELEASE, 30))
        site._handle_client(forwarded(site, RequestKind.ACQUIRE, 10))
        assert site.state.tokens_left == 120
        # The round finally decides: site's grant is its share of the
        # deterministic reallocation of (100 + 40) pooled tokens.
        from repro.core.reallocation import redistribute_tokens

        granted = redistribute_tokens(list(value.states))[site.name]
        site.apply_redistribution(value)
        assert site.state.tokens_left == granted + 20  # grant + surplus

    def test_normal_apply_is_exact_grant(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        value = AcceptValue(
            value_id=Ballot(3, site.name),
            entity_id="VM",
            states=(
                SiteTokenState(site.name, "VM", 100, 0),
                SiteTokenState(mini.site(1).name, "VM", 100, 0),
            ),
        )
        site.apply_redistribution(value)
        assert site.state.tokens_left == 100  # equal split of 200

    def test_spending_below_reserve_is_a_loud_error(self):
        import pytest

        from repro.core.entity import TokenError

        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        value = freeze_with_value(mini, site, pooled=100)
        site.state.tokens_left = 60  # simulate a reserve-accounting bug
        with pytest.raises(TokenError):
            site.apply_redistribution(value)


class TestDegradedEndToEnd:
    def test_blocked_majority_round_still_serves_release_churn(self):
        """Freeze a round against dead peers; the survivor's release
        inflow keeps a trickle of acquires flowing."""
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        survivor = mini.site(0)
        for other in mini.sites[1:]:
            other.crash()
        freeze_with_value(mini, survivor, pooled=100)
        served = []
        from repro.core.client import Operation

        ops = [Operation(1.0 + 0.1 * i, RequestKind.RELEASE, 1) for i in range(20)]
        ops += [Operation(4.0 + 0.1 * i, RequestKind.ACQUIRE, 1) for i in range(15)]
        client = mini.client_for(survivor.region, ops)
        # The client holds VMs from before the freeze (its releases must
        # not be clamped away).
        client.outstanding = 20
        mini.run(until=20.0)
        assert mini.metrics.committed >= 30  # 20 releases + >=10 acquires
        # The reserve itself was never spent.
        assert survivor.state.tokens_left >= survivor._reserved_tokens()
