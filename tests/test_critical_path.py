"""Tests for critical-path attribution (repro.obs.critical_path).

The acceptance bar from the tracing design: on a clean fixed-seed
trace, every sampled request's commit latency decomposes into named
phase/link segments with >= 95% coverage, and the analysis is a pure
function of the trace (same trace -> identical report).
"""

import pytest

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.obs import RingSink, analyze_critical_paths, format_critical_path_report
from repro.workload.trace import TraceConfig


@pytest.fixture(scope="module")
def traced_events():
    sink = RingSink(capacity=200_000)
    config = ExperimentConfig(
        duration=30.0, seed=13, trace=TraceConfig(days=2.0), start_interval=0
    )
    result = Experiment(config, trace_sink=sink).run()
    assert result.committed > 0
    return sink.events()


class TestAttribution:
    def test_coverage_meets_the_bar(self, traced_events):
        report = analyze_critical_paths(traced_events, max_requests=50)
        assert report.requests > 0
        assert report.coverage >= 0.95
        assert report.min_coverage >= 0.95

    def test_segments_partition_by_kind(self, traced_events):
        report = analyze_critical_paths(traced_events, max_requests=50)
        kinds = {segment.kind for segment in report.segments}
        assert kinds <= {"phase", "link"}
        assert any(segment.kind == "link" for segment in report.segments)
        # Segment seconds sum to at least the attributed time (named
        # phases + links; unattributed is also a segment).
        total_segments = sum(segment.seconds for segment in report.segments)
        assert total_segments == pytest.approx(report.total_seconds, rel=0.02)

    def test_deterministic_over_the_same_trace(self, traced_events):
        first = analyze_critical_paths(traced_events, max_requests=50)
        second = analyze_critical_paths(traced_events, max_requests=50)
        assert format_critical_path_report(first) == format_critical_path_report(
            second
        )
        assert [
            (segment.kind, segment.label, segment.seconds, segment.count)
            for segment in first.segments
        ] == [
            (segment.kind, segment.label, segment.seconds, segment.count)
            for segment in second.segments
        ]

    def test_max_requests_bounds_the_sample(self, traced_events):
        report = analyze_critical_paths(traced_events, max_requests=5)
        assert report.requests <= 5

    def test_outcomes_counted(self, traced_events):
        report = analyze_critical_paths(traced_events, max_requests=50)
        assert sum(report.outcomes.values()) == report.requests


class TestEdgeCases:
    def test_empty_trace(self):
        report = analyze_critical_paths([])
        assert report.requests == 0
        assert report.coverage == 1.0
        text = format_critical_path_report(report)
        assert "no completed request spans" in text

    def test_dropped_message_counts_against_coverage(self):
        events = [
            {"type": "span.begin", "span": "request", "trace_id": "req-1",
             "ts": 0.0, "node": "c1"},
            {"type": "msg.send", "trace_id": "req-1", "ts": 0.2, "msg_id": 1,
             "msg_type": "ClientRequest", "src_region": "a", "dst_region": "b",
             "dst": "m1"},
            # Never delivered: the tail is a timeout, not a named phase.
            {"type": "span.end", "span": "request", "trace_id": "req-1",
             "ts": 5.0, "dur": 5.0, "outcome": "failed"},
        ]
        report = analyze_critical_paths(events)
        assert report.requests == 1
        assert report.coverage < 0.95
        labels = {segment.label for segment in report.segments}
        assert "unattributed" in labels

    def test_report_footer_states_coverage(self, ):
        events = [
            {"type": "span.begin", "span": "request", "trace_id": "req-1",
             "ts": 0.0, "node": "c1"},
            {"type": "msg.send", "trace_id": "req-1", "ts": 0.1, "msg_id": 1,
             "msg_type": "ClientRequest", "src_region": "a", "dst_region": "b",
             "dst": "m1"},
            {"type": "msg.deliver", "trace_id": "req-1", "ts": 0.3, "msg_id": 1,
             "msg_type": "ClientRequest", "src_region": "a", "dst_region": "b",
             "dst": "m1"},
            {"type": "msg.send", "trace_id": "req-1", "ts": 0.4, "msg_id": 2,
             "msg_type": "ClientResponse", "src_region": "b", "dst_region": "a",
             "dst": "c1"},
            {"type": "msg.deliver", "trace_id": "req-1", "ts": 0.6, "msg_id": 2,
             "msg_type": "ClientResponse", "src_region": "b", "dst_region": "a",
             "dst": "c1"},
            {"type": "span.end", "span": "request", "trace_id": "req-1",
             "ts": 0.7, "dur": 0.7, "outcome": "granted"},
        ]
        report = analyze_critical_paths(events)
        assert report.coverage == pytest.approx(1.0)
        text = format_critical_path_report(report)
        assert "attributed 100.0%" in text
        assert "a -> b" in text
