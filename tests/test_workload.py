"""Tests for the synthetic trace and the workload pipeline (§5.1)."""

import random

import numpy as np
import pytest

from repro.core.requests import RequestKind
from repro.net.regions import PAPER_REGIONS, Region
from repro.workload.phase_shift import phase_shift_intervals, shifted_trace
from repro.workload.readwrite import mix_reads
from repro.workload.requests import (
    demand_per_compressed_interval,
    operations_from_trace,
    regional_operations,
)
from repro.workload.trace import SyntheticAzureTrace, TraceConfig


def small_trace(**overrides):
    defaults = dict(days=4.0, seed=7)
    defaults.update(overrides)
    return SyntheticAzureTrace(TraceConfig(**defaults))


class TestTraceGenerator:
    def test_deterministic_for_seed(self):
        a = small_trace()
        b = small_trace()
        assert np.array_equal(a.creations, b.creations)
        assert np.array_equal(a.deletions, b.deletions)

    def test_different_seed_differs(self):
        assert not np.array_equal(small_trace().creations, small_trace(seed=8).creations)

    def test_lengths_match_config(self):
        trace = small_trace()
        assert len(trace.creations) == trace.config.num_intervals
        assert trace.config.num_intervals == 4 * 288

    def test_counts_are_non_negative_integers(self):
        trace = small_trace()
        assert trace.creations.min() >= 0
        assert trace.deletions.min() >= 0

    def test_outstanding_is_cumsum_consistent(self):
        trace = small_trace()
        alive = np.cumsum(trace.creations) - np.cumsum(trace.deletions)
        assert np.array_equal(alive, trace.outstanding)
        assert trace.outstanding.min() >= 0

    def test_strong_daily_periodicity(self):
        trace = SyntheticAzureTrace(TraceConfig(days=14.0))
        assert trace.autocorrelation(288) > 0.7

    def test_weekend_demand_is_lower(self):
        trace = SyntheticAzureTrace(TraceConfig(days=14.0, weekend_factor=0.5))
        per_day = trace.config.intervals_per_day
        day_of_week = (np.arange(len(trace.creations)) // per_day) % 7
        weekday = trace.creations[day_of_week < 5].mean()
        weekend = trace.creations[day_of_week >= 5].mean()
        assert weekend < 0.75 * weekday

    def test_peaks_exceed_mean_substantially(self):
        stats = small_trace().demand_stats()
        assert stats["max"] > 2.0 * stats["mean"]

    def test_autocorrelation_bad_lag(self):
        with pytest.raises(ValueError):
            small_trace().autocorrelation(0)


class TestPhaseShift:
    def test_shift_in_intervals(self):
        assert phase_shift_intervals(Region.ASIA_EAST2, Region.EUROPE_WEST2, 300.0) == 96
        assert phase_shift_intervals(Region.US_WEST1, Region.EUROPE_WEST2, 300.0) == -96

    def test_base_region_unshifted(self):
        trace = small_trace()
        creations, _ = shifted_trace(trace, Region.US_WEST1, Region.US_WEST1)
        assert np.array_equal(creations, trace.creations)

    def test_shift_preserves_totals(self):
        trace = small_trace()
        creations, deletions = shifted_trace(trace, Region.ASIA_EAST2)
        assert creations.sum() == trace.creations.sum()
        assert deletions.sum() == trace.deletions.sum()

    def test_regions_peak_at_different_times(self):
        trace = SyntheticAzureTrace(TraceConfig(days=7.0))
        peaks = {}
        for region in (Region.US_WEST1, Region.ASIA_EAST2):
            creations, _ = shifted_trace(trace, region)
            day = creations[:288]
            peaks[region] = int(np.argmax(day))
        assert peaks[Region.US_WEST1] != peaks[Region.ASIA_EAST2]


class TestOperations:
    def test_operations_sorted_by_time(self):
        trace = small_trace()
        ops = operations_from_trace(
            trace.creations, 5.0, 60.0, random.Random(1), lifetime_intervals=6.0
        )
        times = [op.time for op in ops]
        assert times == sorted(times)

    def test_every_release_is_preceded_by_capacity(self):
        """Replaying the stream never releases more than was acquired."""
        trace = small_trace()
        ops = operations_from_trace(
            trace.creations, 5.0, 120.0, random.Random(1), lifetime_intervals=3.0
        )
        outstanding = 0
        for op in ops:
            if op.kind is RequestKind.ACQUIRE:
                outstanding += op.amount
            else:
                outstanding -= op.amount
                assert outstanding >= 0

    def test_acquire_counts_match_trace_window(self):
        trace = small_trace()
        ops = operations_from_trace(
            trace.creations, 5.0, 50.0, random.Random(1), lifetime_intervals=6.0
        )
        acquires = sum(1 for op in ops if op.kind is RequestKind.ACQUIRE)
        assert acquires == int(trace.creations[:10].sum())

    def test_compression_packs_interval_into_window(self):
        trace = small_trace()
        ops = operations_from_trace(
            trace.creations, 2.0, 2.0, random.Random(1), lifetime_intervals=6.0,
            start_interval=12,
        )
        acquires = [op for op in ops if op.kind is RequestKind.ACQUIRE]
        assert len(acquires) == int(trace.creations[12])
        assert all(0.0 <= op.time < 2.0 for op in acquires)

    def test_invalid_parameters(self):
        trace = small_trace()
        with pytest.raises(ValueError):
            operations_from_trace(trace.creations, 0.0, 10.0, random.Random(1))
        with pytest.raises(ValueError):
            operations_from_trace(
                trace.creations, 5.0, 10.0, random.Random(1), lifetime_intervals=0.0
            )

    def test_regional_operations_cover_all_regions(self):
        trace = small_trace()
        per_region = regional_operations(trace, list(PAPER_REGIONS), duration=30.0)
        assert set(per_region) == set(PAPER_REGIONS)
        assert all(ops for ops in per_region.values())

    def test_demand_scale_thins_the_stream(self):
        trace = small_trace()
        full = regional_operations(trace, [Region.US_WEST1], duration=60.0)
        half = regional_operations(
            trace, [Region.US_WEST1], duration=60.0, demand_scale=0.5
        )
        assert len(half[Region.US_WEST1]) < 0.7 * len(full[Region.US_WEST1])

    def test_demand_series_matches_shifted_creations(self):
        trace = small_trace()
        series = demand_per_compressed_interval(trace, Region.ASIA_EAST2)
        creations, _ = shifted_trace(trace, Region.ASIA_EAST2)
        assert np.array_equal(series, creations)


class TestReadMixing:
    def test_ratio_zero_is_identity(self):
        trace = small_trace()
        ops = operations_from_trace(
            trace.creations, 5.0, 30.0, random.Random(1), lifetime_intervals=6.0
        )
        assert mix_reads(ops, 0.0, random.Random(2)) == ops

    def test_ratio_replaces_expected_fraction(self):
        trace = small_trace()
        ops = operations_from_trace(
            trace.creations, 5.0, 120.0, random.Random(1), lifetime_intervals=6.0
        )
        mixed = mix_reads(ops, 0.5, random.Random(2))
        reads = sum(1 for op in mixed if op.kind is RequestKind.READ)
        assert 0.4 < reads / len(mixed) < 0.6
        assert len(mixed) == len(ops)

    def test_ratio_one_is_all_reads(self):
        trace = small_trace()
        ops = operations_from_trace(
            trace.creations, 5.0, 30.0, random.Random(1), lifetime_intervals=6.0
        )
        mixed = mix_reads(ops, 1.0, random.Random(2))
        assert all(op.kind is RequestKind.READ for op in mixed)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            mix_reads([], 1.5, random.Random(1))
