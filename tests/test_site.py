"""Tests for the Samya site: serving, queueing, triggers, reads, recovery."""

import pytest

from repro.core.client import Operation
from repro.core.config import AvantanVariant
from repro.core.requests import RequestKind, RequestStatus
from repro.prediction.base import Predictor

from tests.helpers import MiniCluster, acquire_burst, fast_config, uniform_ops


class FixedPredictor(Predictor):
    """Predicts a constant demand; handy for forcing proactive triggers."""

    def __init__(self, value: float) -> None:
        self.value = value
        self.updates = 0

    def update(self, value: float) -> None:
        self.updates += 1

    def forecast(self) -> float:
        return self.value


class TestLocalServing:
    def test_acquire_and_release_update_local_tokens(self):
        mini = MiniCluster(maximum=300)
        region = mini.site(0).region
        mini.client_for(
            region,
            [
                Operation(1.0, RequestKind.ACQUIRE, 10),
                Operation(2.0, RequestKind.RELEASE, 4),
            ],
        )
        mini.run(until=5.0)
        assert mini.site(0).state.tokens_left == 100 - 10 + 4
        assert mini.metrics.committed == 2

    def test_commit_latency_is_intra_region(self):
        mini = MiniCluster(maximum=300)
        mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=20, spacing=0.05))
        mini.run(until=5.0)
        summary = mini.metrics.latency_summary()
        assert summary.p90 < 0.005  # local RTT ~1.4 ms + service

    def test_no_constraint_mode_grants_everything(self):
        config = fast_config(enforce_constraint=False)
        mini = MiniCluster(maximum=10, config=config)
        mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=500))
        mini.run(until=10.0)
        assert mini.metrics.committed == 500
        assert mini.metrics.rejected == 0

    def test_no_redistribution_mode_rejects_on_exhaustion(self):
        config = fast_config(redistribute=False)
        mini = MiniCluster(maximum=300, config=config)
        mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=150))
        mini.run(until=10.0)
        assert mini.metrics.committed == 100  # the local allocation
        assert mini.metrics.rejected == 50
        totals = mini.cluster.redistribution_totals()
        assert totals["triggered"] == 0

    def test_oversized_acquire_rejected_not_crashing(self):
        config = fast_config(redistribute=False)
        mini = MiniCluster(maximum=300, config=config)
        mini.client_for(
            mini.site(0).region, [Operation(1.0, RequestKind.ACQUIRE, 1000)]
        )
        mini.run(until=5.0)
        assert mini.metrics.rejected == 1


class TestDemandTracking:
    def test_epoch_demand_fed_to_predictor(self):
        predictor = FixedPredictor(0.0)
        mini = MiniCluster(
            maximum=300, predictor_factory=lambda region, replica: predictor
        )
        mini.client_for(mini.site(0).region, acquire_burst(start=0.2, count=10, spacing=0.01))
        mini.run(until=5.5)
        # fast_config epoch = 1 s -> predictor saw ~5 epoch closes per site.
        assert predictor.updates >= 5

    def test_rejected_demand_still_counts_as_demand(self):
        config = fast_config(redistribute=False)
        mini = MiniCluster(maximum=30, config=config)
        site = mini.site(0)
        mini.client_for(site.region, acquire_burst(start=0.1, count=50))
        mini.run(until=0.9)
        assert site.history._current_epoch_demand == 50


class TestProactiveTrigger:
    def test_prediction_above_balance_triggers_redistribution(self):
        # Every site predicts demand of 150 but holds only 100.
        mini = MiniCluster(
            maximum=300,
            predictor_factory=lambda region, replica: FixedPredictor(150.0),
        )
        site = mini.site(0)
        mini.client_for(site.region, acquire_burst(start=1.0, count=5, spacing=0.2))
        mini.run(until=20.0)
        totals = mini.cluster.redistribution_totals()
        assert totals["proactive_triggers"] >= 1

    def test_low_prediction_never_triggers(self):
        mini = MiniCluster(
            maximum=300,
            predictor_factory=lambda region, replica: FixedPredictor(1.0),
        )
        mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=20, spacing=0.1))
        mini.run(until=20.0)
        assert mini.cluster.redistribution_totals()["proactive_triggers"] == 0

    def test_proactive_disabled_by_config(self):
        config = fast_config(proactive=False)
        mini = MiniCluster(
            maximum=300,
            config=config,
            predictor_factory=lambda region, replica: FixedPredictor(500.0),
        )
        mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=20, spacing=0.1))
        mini.run(until=20.0)
        assert mini.cluster.redistribution_totals()["proactive_triggers"] == 0


class TestReads:
    def test_read_returns_global_snapshot(self):
        mini = MiniCluster(maximum=300)
        region = mini.site(0).region
        client = mini.client_for(
            region,
            [
                Operation(1.0, RequestKind.ACQUIRE, 40),
                Operation(2.0, RequestKind.READ, 0),
            ],
        )
        responses = []
        original = client.on_response

        def spy(response, now):
            responses.append(response)
            original(response, now)

        client.on_response = spy
        mini.run(until=10.0)
        read_responses = [r for r in responses if r.value is not None]
        assert read_responses[0].value == 260

    def test_read_survives_peer_crash_via_timeout(self):
        mini = MiniCluster(maximum=300)
        mini.site(2).crash()
        client = mini.client_for(
            mini.site(0).region, [Operation(1.0, RequestKind.READ, 0)]
        )
        values = []
        client.on_response = lambda response, now: values.append(response.value)
        mini.run(until=10.0)
        # Crashed peer's 100 tokens missing from the degraded snapshot.
        assert values == [200]

    def test_reads_counted_separately(self):
        mini = MiniCluster(maximum=300)
        mini.client_for(mini.site(0).region, [Operation(1.0, RequestKind.READ, 0)])
        mini.run(until=10.0)
        assert mini.metrics.committed_reads == 1
        assert mini.metrics.committed == 0


class TestCrashRecovery:
    def test_recovered_site_restores_entity_state_from_store(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        mini.client_for(site.region, acquire_burst(start=1.0, count=30))
        mini.run(until=5.0)
        tokens_before = site.state.tokens_left
        site.crash()
        # Simulate in-memory corruption while down; recovery must reload.
        site.state.tokens_left = 999999
        site.recover()
        assert site.state.tokens_left == tokens_before

    def test_crashed_site_drops_queued_requests(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        site._pending.append(object())
        site.crash()
        assert len(site._pending) == 0

    def test_epoch_timer_resumes_after_recovery(self):
        predictor = FixedPredictor(0.0)
        mini = MiniCluster(
            maximum=300, predictor_factory=lambda region, replica: predictor
        )
        site = mini.site(0)
        mini.run(until=2.0)
        updates_before = predictor.updates
        site.crash()
        mini.run_more(until=5.0)
        site.recover()
        mini.run_more(until=8.0)
        assert predictor.updates > updates_before


class TestServiceTimeModel:
    def test_back_to_back_requests_queue_behind_each_other(self):
        config = fast_config(service_time=0.05)
        mini = MiniCluster(maximum=300, config=config)
        mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=10, spacing=0.0))
        mini.run(until=10.0)
        summary = mini.metrics.latency_summary()
        # Tenth request waits behind nine 50 ms services.
        assert summary.maximum > 0.45
