"""Tests for Avantan[(n+1)/2]: failure-free rounds, recovery, safety."""

from repro.core.avantan.base import Role
from repro.core.avantan.state import AcceptValue, Ballot
from repro.core.config import AvantanVariant
from repro.core.entity import SiteTokenState
from repro.core.messages import DecisionMsg
from repro.core.requests import RequestStatus

from tests.helpers import MiniCluster, acquire_burst, uniform_ops


def exhausting_cluster(**kwargs):
    """3 sites x 100 tokens; region 0 gets a 150-acquire burst, which
    cannot be served locally and must force a redistribution."""
    mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300, **kwargs)
    region = mini.cluster.sites[0].region
    mini.client_for(region, acquire_burst(start=1.0, count=150))
    return mini


class TestFailureFreeRound:
    def test_burst_is_fully_served_via_redistribution(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        assert mini.metrics.committed == 150
        assert mini.metrics.rejected == 0
        mini.check()

    def test_redistribution_was_actually_triggered(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        totals = mini.cluster.redistribution_totals()
        assert totals["triggered"] >= 1
        assert totals["reactive_triggers"] >= 1

    def test_tokens_moved_to_the_hot_site(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        # 150 of 300 tokens acquired; the rest re-split across the pool.
        assert mini.cluster.total_tokens_left() == 150

    def test_all_sites_idle_after_round(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        for site in mini.sites:
            assert site.protocol.role is Role.IDLE
            assert not site.protocol.active

    def test_round_state_reset_but_ballot_kept(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        for site in mini.sites:
            state = site.protocol.state
            assert state.accept_val is None
            assert not state.decision
            assert state.ballot_num.num >= 1

    def test_all_participants_applied_same_values(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        applied_sets = [site.protocol.state.applied for site in mini.sites]
        decided = set().union(*applied_sets)
        assert decided, "no redistribution value was ever applied"
        # Every decided value reaches every site (Decision broadcast).
        for applied in applied_sets:
            assert applied == decided


class TestLeaderFailure:
    def test_leader_crash_mid_round_recovers_or_aborts_consistently(self):
        mini = exhausting_cluster()
        hot = mini.site(0)
        # Crash the hot site (the round leader) shortly after the burst.
        mini.kernel.schedule(1.2, hot.crash)
        mini.run(until=40.0)
        mini.check()
        survivors = mini.sites[1:]
        for site in survivors:
            assert site.protocol.role is Role.IDLE or site.protocol.degraded

    def test_crashed_leader_recovers_and_rejoins(self):
        mini = exhausting_cluster()
        hot = mini.site(0)
        mini.kernel.schedule(1.2, hot.crash)
        mini.kernel.schedule(10.0, hot.recover)
        mini.run(until=60.0)
        mini.check()
        assert not hot.crashed
        # The recovered site still holds a consistent balance.
        assert hot.state.tokens_left >= 0

    def test_majority_crash_blocks_redistribution_but_not_local_serving(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        regions = [site.region for site in mini.sites]
        mini.client_for(regions[0], acquire_burst(start=5.0, count=150))
        # A light local load on the last site, servable from its own 100.
        mini.client_for(regions[2], acquire_burst(start=5.0, count=50, spacing=0.1))
        mini.kernel.schedule(1.0, mini.site(0).crash)
        mini.kernel.schedule(1.0, mini.site(1).crash)
        mini.run(until=40.0)
        # Site 2 served its local 50 acquires despite no quorum anywhere.
        assert mini.site(2).counters["granted_acquires"] >= 50
        mini.check()


class TestSafety:
    def test_duplicate_decision_is_idempotent(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        site = mini.site(1)
        value = site.protocol.state.applied_log[-1]
        before = site.state.tokens_left
        site.protocol.handle(DecisionMsg(value.value_id, value), "replayer")
        assert site.state.tokens_left == before
        mini.check()

    def test_conservation_under_message_loss(self):
        mini = exhausting_cluster(loss=0.05)
        mini.run(until=60.0)
        mini.check()

    def test_conservation_under_sustained_contention(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=200, seed=5)
        for index, site in enumerate(mini.sites):
            mini.client_for(
                site.region,
                uniform_ops(seed=index, count=600, rate=40, acquire_fraction=0.8),
            )
        mini.run(until=60.0)
        mini.check()

    def test_stale_participant_never_leaks(self):
        """Repeated rounds under loss + crash churn must conserve tokens
        (regression for the Algorithm-1 conservation hole)."""
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=200, seed=9, loss=0.03)
        for index, site in enumerate(mini.sites):
            mini.client_for(
                site.region,
                uniform_ops(seed=index, count=500, rate=30, acquire_fraction=0.85),
            )
        mini.kernel.schedule(5.0, mini.site(1).crash)
        mini.kernel.schedule(9.0, mini.site(1).recover)
        mini.run(until=60.0)
        mini.check()


class TestRecoveryCases:
    def test_new_leader_adopts_orphaned_value(self):
        """Drive lines 19-20 directly: a cohort holding an accepted value
        re-elects and must re-propose that value, not a fresh one."""
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        a, b, c = mini.sites
        orphan = AcceptValue(
            value_id=Ballot(1, a.name),
            entity_id="VM",
            states=(
                SiteTokenState(a.name, "VM", 100, 0),
                SiteTokenState(b.name, "VM", 100, 0),
                SiteTokenState(c.name, "VM", 100, 0),
            ),
        )
        b.protocol.state.ballot_num = Ballot(1, a.name)
        b.protocol.state.accept_val = orphan
        b.protocol.state.accept_num = Ballot(1, a.name)
        b.protocol.role = Role.COHORT
        b.protocol._restart_timer(0.5)
        mini.run(until=20.0)
        # The orphan was driven to a decision everywhere.
        for site in mini.sites:
            assert orphan.value_id in site.protocol.state.applied
        mini.check()
