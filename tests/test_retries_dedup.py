"""Tests for app-manager retries and site-side request deduplication."""

from repro.core.client import Operation
from repro.core.messages import ForwardedRequest
from repro.core.requests import ClientRequest, RequestKind, RequestStatus
from repro.net.message import EnvelopeDedup

from tests.helpers import MiniCluster, acquire_burst


class TestEnvelopeDedup:
    def test_duplicates_within_window_are_seen(self):
        dedup = EnvelopeDedup(limit=4)
        assert not dedup.seen(1)
        assert dedup.seen(1)
        assert len(dedup) == 1
        assert dedup.evictions == 0

    def test_window_is_bounded_and_counts_evictions(self):
        dedup = EnvelopeDedup(limit=3)
        for msg_id in range(10):
            dedup.seen(msg_id)
        assert len(dedup) == 3
        assert dedup.evictions == 7
        # The oldest ids aged out: a retransmission past the window is
        # no longer recognized — exactly the guarantee thinning the
        # eviction counter exists to surface.
        assert not dedup.seen(0)
        assert dedup.seen(9)

    def test_on_evict_hook_fires_with_running_total(self):
        totals = []
        dedup = EnvelopeDedup(limit=2, on_evict=totals.append)
        for msg_id in range(5):
            dedup.seen(msg_id)
        assert totals == [1, 2, 3]

    def test_default_window_is_2_to_the_16(self):
        assert EnvelopeDedup().limit == 1 << 16


class TestSiteDedup:
    def _forward(self, mini, request):
        site = mini.site(0)
        manager = mini.cluster.app_managers[site.region]
        site._handle_client(ForwardedRequest(request, reply_to=manager.name))

    def test_duplicate_acquire_executes_once(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        request = ClientRequest(
            kind=RequestKind.ACQUIRE, entity_id="VM", amount=10,
            client="c", region=site.region.value,
        )
        self._forward(mini, request)
        self._forward(mini, request)  # the retry
        assert site.state.tokens_left == 90
        assert site.counters["granted_acquires"] == 1

    def test_duplicate_release_executes_once(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        request = ClientRequest(
            kind=RequestKind.RELEASE, entity_id="VM", amount=5,
            client="c", region=site.region.value,
        )
        self._forward(mini, request)
        self._forward(mini, request)
        assert site.state.tokens_left == 105

    def test_duplicate_gets_the_same_cached_answer(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        request = ClientRequest(
            kind=RequestKind.ACQUIRE, entity_id="VM", amount=10,
            client="c", region=site.region.value,
        )
        responses = []
        mini.network.trace = lambda message: responses.append(message)
        self._forward(mini, request)
        self._forward(mini, request)
        payloads = [m.payload for m in responses if hasattr(m.payload, "response")]
        assert len(payloads) == 2
        assert payloads[0].response.status == payloads[1].response.status

    def test_cache_is_bounded(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        site._RESPONSE_CACHE_LIMIT = 4
        for index in range(10):
            request = ClientRequest(
                kind=RequestKind.RELEASE, entity_id="VM", amount=1,
                client="c", region=site.region.value,
            )
            self._forward(mini, request)
        assert len(site._response_cache) <= 4

    def test_duplicate_of_queued_request_ignored(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(0)
        request = ClientRequest(
            kind=RequestKind.ACQUIRE, entity_id="VM", amount=500,  # > local
            client="c", region=site.region.value,
        )
        self._forward(mini, request)
        assert len(site._pending) == 1
        self._forward(mini, request)
        assert len(site._pending) == 1  # duplicate not queued twice


class TestAppManagerRetries:
    def test_crash_after_submit_fails_over_to_next_site(self):
        mini = MiniCluster(maximum=300)
        near = mini.site(0)
        manager = mini.cluster.app_managers[near.region]
        manager.retry_timeout = 1.0
        client = mini.client_for(near.region, acquire_burst(1.0, 5, spacing=0.0))
        client.request_timeout = 30.0
        # The near site dies while the requests are in flight to it (they
        # were already submitted and routed, so only a retry saves them).
        mini.kernel.schedule(1.0001, near.crash)
        mini.run(until=20.0)
        # Requests were retried against a live site and committed.
        assert mini.metrics.committed == 5
        assert manager.retries >= 5
        served_elsewhere = sum(
            site.counters["granted_acquires"] for site in mini.sites[1:]
        )
        assert served_elsewhere == 5
        mini.check()

    def test_slow_site_is_not_retried_elsewhere(self):
        """While routing still considers the original target healthy, the
        manager waits instead of risking double execution."""
        mini = MiniCluster(maximum=300)
        near = mini.site(0)
        manager = mini.cluster.app_managers[near.region]
        manager.retry_timeout = 0.5
        # Make the site slow: a long redistribution freeze via a fake
        # active protocol round.
        request = ClientRequest(
            kind=RequestKind.ACQUIRE, entity_id="VM", amount=500,
            client="c", region=near.region.value,
        )
        client = mini.client_for(near.region, acquire_burst(1.0, 3, spacing=0.01))
        client.request_timeout = 60.0
        mini.run(until=15.0)
        assert manager.retries == 0
        assert mini.metrics.committed == 3
        total_granted = sum(site.counters["granted_acquires"] for site in mini.sites)
        assert total_granted == 3
        mini.check()

    def test_everything_crashed_eventually_fails(self):
        mini = MiniCluster(maximum=300)
        manager = mini.cluster.app_managers[mini.site(0).region]
        manager.retry_timeout = 0.5
        client = mini.client_for(mini.site(0).region, acquire_burst(1.0, 2))
        client.request_timeout = 60.0
        for site in mini.sites:
            mini.kernel.schedule(0.5, site.crash)
        mini.run(until=30.0)
        assert mini.metrics.failed == 2
        assert mini.metrics.committed == 0
