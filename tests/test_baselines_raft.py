"""Tests for the Raft substrate and the CockroachDB-like baseline."""

from repro.baselines.crdb import CockroachLikeCluster
from repro.baselines.raft.node import RaftNode
from repro.core.client import Operation
from repro.core.entity import Entity
from repro.core.requests import RequestKind
from repro.metrics.hub import MetricsHub
from repro.net.network import Network, NetworkConfig
from repro.net.regions import PAPER_REGIONS
from repro.sim.kernel import Kernel

from tests.helpers import acquire_burst, uniform_ops


def build_cluster(seed=1, loss=0.0):
    kernel = Kernel(seed=seed)
    network = Network(kernel, NetworkConfig(loss_probability=loss))
    cluster = CockroachLikeCluster(kernel, network, Entity("VM", 100), list(PAPER_REGIONS))
    hub = MetricsHub()
    return kernel, cluster, hub


def single_leader(cluster):
    return [n for n in cluster.replicas if n.is_leader and not n.crashed]


class TestElections:
    def test_preferred_leader_wins_first_election(self):
        kernel, cluster, hub = build_cluster()
        cluster.start()
        kernel.run(until=3.0)
        leaders = single_leader(cluster)
        assert len(leaders) == 1
        assert leaders[0] is cluster.replicas[0]

    def test_terms_agree_after_stabilization(self):
        kernel, cluster, hub = build_cluster()
        cluster.start()
        kernel.run(until=5.0)
        assert len({n.term for n in cluster.replicas}) == 1

    def test_leader_crash_elects_replacement(self):
        kernel, cluster, hub = build_cluster()
        kernel.schedule(3.0, cluster.replicas[0].crash)
        cluster.start()
        kernel.run(until=15.0)
        leaders = single_leader(cluster)
        assert len(leaders) == 1
        assert leaders[0] is not cluster.replicas[0]

    def test_recovered_old_leader_steps_down(self):
        kernel, cluster, hub = build_cluster()
        old = cluster.replicas[0]
        kernel.schedule(3.0, old.crash)
        kernel.schedule(20.0, old.recover)
        cluster.start()
        kernel.run(until=40.0)
        assert len(single_leader(cluster)) == 1
        assert not old.is_leader or all(
            n is old or not n.is_leader for n in cluster.replicas
        )


class TestReplication:
    def test_commits_and_constraint(self):
        kernel, cluster, hub = build_cluster()
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(2.0, 120, spacing=0.3), metrics=hub)
        cluster.start()
        kernel.run(until=60.0)
        assert hub.committed == 100
        assert hub.rejected == 20

    def test_replicas_apply_identical_logs(self):
        kernel, cluster, hub = build_cluster()
        cluster.add_client(PAPER_REGIONS[0], uniform_ops(3, 80, rate=5), metrics=hub)
        cluster.start()
        kernel.run(until=90.0)
        frontier = max(n.commit_index for n in cluster.replicas)
        converged = [n for n in cluster.replicas if n.applied_index == frontier]
        assert len(converged) >= 3  # a majority has applied everything
        assert len({repr(sorted(n.state_machine.used.items())) for n in converged}) == 1

    def test_lagging_follower_catches_up(self):
        kernel, cluster, hub = build_cluster()
        laggard = cluster.replicas[4]
        kernel.schedule(1.0, laggard.crash)
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(2.0, 30, spacing=0.3), metrics=hub)
        kernel.schedule(20.0, laggard.recover)
        cluster.start()
        kernel.run(until=60.0)
        leader = single_leader(cluster)[0]
        assert laggard.log.last_index == leader.log.last_index
        assert laggard.applied_index >= 30

    def test_leaseholder_reads_are_local(self):
        kernel, cluster, hub = build_cluster()
        cluster.add_client(PAPER_REGIONS[0], [Operation(2.0, RequestKind.READ, 0)], metrics=hub)
        cluster.start()
        kernel.run(until=5.0)
        assert hub.committed_reads == 1
        assert hub.read_latencies[0] < 0.05

    def test_no_commits_without_majority(self):
        kernel, cluster, hub = build_cluster()
        for node in cluster.replicas[2:]:
            kernel.schedule(1.0, node.crash)
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(3.0, 20, spacing=0.2), metrics=hub)
        cluster.start()
        kernel.run(until=30.0)
        assert hub.committed == 0

    def test_survives_message_loss(self):
        kernel, cluster, hub = build_cluster(loss=0.05)
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(2.0, 30, spacing=0.5), metrics=hub)
        cluster.start()
        kernel.run(until=120.0)
        assert hub.committed >= 25

    def test_partition_minority_stalls_majority_commits(self):
        kernel, cluster, hub = build_cluster()
        names = [n.name for n in cluster.replicas]
        # Leader ends up in the minority side: majority side re-elects.
        kernel.schedule(2.0, cluster.network.partitions.partition, [names[:2], names[2:]])
        cluster.start()
        kernel.run(until=30.0)
        majority_leaders = [
            n for n in cluster.replicas[2:] if n.is_leader and not n.crashed
        ]
        assert len(majority_leaders) == 1
        # Old leader in the minority cannot have advanced its term beyond.
        assert cluster.replicas[0].term <= majority_leaders[0].term
