"""Tests for the redistribution round tracer."""

import pytest

from repro.core.config import AvantanVariant
from repro.metrics.rounds import RoundLog, RoundOutcome, RoundSummary

from tests.helpers import MiniCluster, acquire_burst


class TestRoundLog:
    def test_begin_end_records_duration(self):
        log = RoundLog()
        log.begin("s", "leader", 10.0)
        log.end(RoundOutcome.DECIDED, 10.5)
        [record] = log.records()
        assert record.duration == pytest.approx(0.5)
        assert record.outcome is RoundOutcome.DECIDED

    def test_role_promotion_keeps_one_record(self):
        log = RoundLog()
        log.begin("s", "cohort", 1.0)
        log.begin("s", "leader", 2.0)  # cohort promoted mid-round
        log.end(RoundOutcome.ABORTED, 3.0)
        [record] = log.records()
        assert record.role == "cohort"
        assert record.started_at == 1.0

    def test_end_without_begin_is_noop(self):
        log = RoundLog()
        log.end(RoundOutcome.DECIDED, 1.0)
        assert log.records() == []

    def test_degraded_flag(self):
        log = RoundLog()
        log.begin("s", "leader", 0.0)
        log.mark_degraded()
        log.end(RoundOutcome.DECIDED, 1.0)
        assert log.records()[0].degraded

    def test_capacity_bound(self):
        log = RoundLog(capacity=3)
        for index in range(5):
            log.begin("s", "leader", float(index))
            log.end(RoundOutcome.DECIDED, float(index) + 0.1)
        assert len(log.records()) == 3


class TestRoundSummary:
    def test_aggregates_across_logs(self):
        logs = []
        for index in range(2):
            log = RoundLog()
            log.begin("s", "leader", 0.0)
            log.end(RoundOutcome.DECIDED, 1.0)
            log.begin("s", "cohort", 2.0)
            log.end(RoundOutcome.ABORTED, 2.5)
            logs.append(log)
        summary = RoundSummary.from_logs(logs)
        assert summary.decided == 2
        assert summary.aborted == 2
        assert summary.mean_duration == pytest.approx(0.75)
        assert summary.max_duration == pytest.approx(1.0)
        assert summary.total_frozen_time == pytest.approx(3.0)

    def test_empty(self):
        summary = RoundSummary.from_logs([])
        assert summary.decided == 0
        assert summary.mean_duration == 0.0


class TestLiveTracing:
    @pytest.mark.parametrize("variant", [AvantanVariant.MAJORITY, AvantanVariant.STAR])
    def test_redistribution_produces_round_records(self, variant):
        mini = MiniCluster(variant=variant, maximum=300)
        mini.client_for(mini.site(0).region, acquire_burst(1.0, 150))
        mini.run(until=30.0)
        summary = mini.cluster.round_summary()
        assert summary.decided >= 1
        # Rounds are WAN-bounded: sub-second but not instant.
        assert 0.0 < summary.mean_duration < 5.0

    def test_hot_site_record_shows_leader_role(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        mini.client_for(mini.site(0).region, acquire_burst(1.0, 150))
        mini.run(until=30.0)
        records = mini.site(0).protocol.rounds.records()
        assert any(record.role == "leader" for record in records)
