"""Tests for actors and timers."""

from repro.sim.kernel import Kernel
from repro.sim.process import Actor, Timer


class TestTimer:
    def test_fires_after_delay(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.now))
        timer.restart(2.0)
        kernel.run()
        assert fired == [2.0]

    def test_restart_cancels_previous(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.now))
        timer.restart(1.0)
        timer.restart(3.0)
        kernel.run()
        assert fired == [3.0]

    def test_cancel(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(1))
        timer.restart(1.0)
        timer.cancel()
        kernel.run()
        assert fired == []
        assert not timer.armed

    def test_armed_reflects_state(self):
        kernel = Kernel()
        timer = Timer(kernel, lambda: None)
        assert not timer.armed
        timer.restart(1.0)
        assert timer.armed
        kernel.run()
        assert not timer.armed

    def test_reusable_after_firing(self):
        kernel = Kernel()
        fired = []
        timer = Timer(kernel, lambda: fired.append(kernel.now))
        timer.restart(1.0)
        kernel.run()
        timer.restart(1.0)
        kernel.run()
        assert fired == [1.0, 2.0]


class TestActor:
    def test_after_schedules_local_work(self):
        kernel = Kernel()
        actor = Actor(kernel, "a")
        seen = []
        actor.after(1.0, seen.append, "x")
        kernel.run()
        assert seen == ["x"]

    def test_crashed_actor_suppresses_pending_work(self):
        kernel = Kernel()
        actor = Actor(kernel, "a")
        seen = []
        actor.after(1.0, seen.append, "x")
        actor.crash()
        kernel.run()
        assert seen == []

    def test_recovered_actor_runs_new_work(self):
        kernel = Kernel()
        actor = Actor(kernel, "a")
        seen = []
        actor.crash()
        actor.recover()
        actor.after(1.0, seen.append, "x")
        kernel.run()
        assert seen == ["x"]

    def test_actor_timer_respects_crash(self):
        kernel = Kernel()
        actor = Actor(kernel, "a")
        seen = []
        timer = actor.timer(lambda: seen.append(1))
        timer.restart(1.0)
        actor.crash()
        kernel.run()
        assert seen == []

    def test_rng_is_per_actor(self):
        kernel = Kernel(seed=1)
        a = Actor(kernel, "a")
        b = Actor(kernel, "b")
        assert a.rng().random() != b.rng().random()
