"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "samya-majority"
        assert args.duration == 120.0

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "spanner"])


class TestCommands:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--duration", "10", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "committed" in out
        assert "latency p99" in out

    def test_run_with_series(self, capsys):
        code = main(["run", "--duration", "10", "--series"])
        assert code == 0
        assert "throughput" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--systems", "samya-majority,demarcation", "--duration", "10"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "samya-majority" in out and "demarcation" in out

    def test_compare_unknown_system_exits_nonzero(self, capsys):
        code = main(["compare", "--systems", "spanner", "--duration", "5"])
        assert code == 2
        assert "unknown systems" in capsys.readouterr().err

    def test_predict(self, capsys):
        code = main(["predict", "--models", "random-walk,seasonal", "--days", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "random-walk" in out and "seasonal" in out

    def test_predict_unknown_model(self, capsys):
        code = main(["predict", "--models", "crystal-ball", "--days", "3"])
        assert code == 2

    def test_trace(self, capsys):
        code = main(["trace", "--days", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "daily_autocorrelation" in out


class TestTelemetryTrace:
    def test_run_writes_trace_then_summarizes(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        code = main(["run", "--duration", "10", "--seed", "2",
                     "--trace", str(path)])
        assert code == 0
        assert path.exists()
        capsys.readouterr()
        code = main(["trace", str(path), "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validated" in out
        assert "per-phase latency" in out
        assert "messages by payload type" in out

    def test_trace_missing_file_exits_nonzero(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert capsys.readouterr().err

    def test_trace_schema_errors_exit_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0.0, "type": "nope", "node": ""}\n')
        code = main(["trace", str(path), "--validate"])
        assert code == 1
        assert "schema error" in capsys.readouterr().err
