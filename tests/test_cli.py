"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.system == "samya-majority"
        assert args.duration == 120.0

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--system", "spanner"])


class TestCommands:
    def test_run_prints_metrics(self, capsys):
        code = main(["run", "--duration", "10", "--seed", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "committed" in out
        assert "latency p99" in out

    def test_run_with_series(self, capsys):
        code = main(["run", "--duration", "10", "--series"])
        assert code == 0
        assert "throughput" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--systems", "samya-majority,demarcation", "--duration", "10"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "samya-majority" in out and "demarcation" in out

    def test_compare_unknown_system_exits_nonzero(self, capsys):
        code = main(["compare", "--systems", "spanner", "--duration", "5"])
        assert code == 2
        assert "unknown systems" in capsys.readouterr().err

    def test_predict(self, capsys):
        code = main(["predict", "--models", "random-walk,seasonal", "--days", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "random-walk" in out and "seasonal" in out

    def test_predict_unknown_model(self, capsys):
        code = main(["predict", "--models", "crystal-ball", "--days", "3"])
        assert code == 2

    def test_trace(self, capsys):
        code = main(["trace", "--days", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "daily_autocorrelation" in out


class TestSweepScale:
    def test_small_sweep_prints_table_and_audits(self, capsys):
        code = main([
            "sweep-scale", "--entities", "50,100", "--duration", "5",
            "--rate", "200", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "scale sweep" in out
        assert "events/s" in out
        assert "conservation audit: clean" in out

    def test_bad_entities_list_exits_two(self, capsys):
        code = main(["sweep-scale", "--entities", "fifty"])
        assert code == 2
        assert "bad --entities" in capsys.readouterr().err

    def test_trace_artifact_written(self, tmp_path, capsys):
        path = tmp_path / "scale.jsonl.gz"
        code = main([
            "sweep-scale", "--entities", "50", "--duration", "3",
            "--rate", "200", "--trace", str(path),
        ])
        assert code == 0
        assert path.exists()


class TestTelemetryTrace:
    def test_run_writes_trace_then_summarizes(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        code = main(["run", "--duration", "10", "--seed", "2",
                     "--trace", str(path)])
        assert code == 0
        assert path.exists()
        capsys.readouterr()
        code = main(["trace", str(path), "--validate"])
        out = capsys.readouterr().out
        assert code == 0
        assert "validated" in out
        assert "per-phase latency" in out
        assert "messages by payload type" in out

    def test_trace_missing_file_exits_nonzero(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert capsys.readouterr().err

    def test_trace_schema_errors_exit_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0.0, "type": "nope", "node": ""}\n')
        code = main(["trace", str(path), "--validate"])
        assert code == 1
        assert "schema error" in capsys.readouterr().err


class TestActiveMonitoring:
    def test_run_audit_clean_exits_zero(self, capsys):
        code = main(["run", "--duration", "10", "--seed", "2", "--audit"])
        out = capsys.readouterr().out
        assert code == 0
        assert "online audit: clean" in out

    def test_gzip_trace_audit_offline(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl.gz"
        assert main(["run", "--duration", "10", "--seed", "2",
                     "--trace", str(path)]) == 0
        capsys.readouterr()
        code = main(["trace", str(path), "--audit"])
        out = capsys.readouterr().out
        assert code == 0
        assert "audit: clean" in out

    def test_trace_audit_flags_corruption(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"ts": 0.0, "type": "run.meta", "schema": "repro-trace/1", '
            '"substrate": "sim", "system": "samya-majority", "seed": 1, '
            '"duration": 1.0, "maximum": 10, "predictor": "none", '
            '"reallocator": "greedy"}\n'
            '{"ts": 1.0, "type": "invariant.check", "settled": 4, '
            '"outstanding": 4, "maximum": 10}\n'
        )
        code = main(["trace", str(path), "--audit"])
        captured = capsys.readouterr()
        assert code == 1
        assert "conservation" in captured.out


class TestBenchGate:
    def test_list_shows_registered_benches(self, capsys):
        code = main(["bench", "--list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig3b_throughput" in out
        assert "table2b_latency" in out

    def test_unknown_selection_exits_two(self, capsys):
        code = main(["bench", "--list", "-k", "no-such-bench"])
        assert code == 2
        assert "no registered benchmark" in capsys.readouterr().err

    def test_check_against_committed_baselines(self, tmp_path, capsys):
        import json
        import shutil

        from repro.harness.regression import default_baseline_dir

        source = default_baseline_dir() / "BENCH_fig3b_throughput.json"
        artifacts = tmp_path / "artifacts"
        artifacts.mkdir()
        shutil.copy2(source, artifacts / source.name)
        code = main(["bench", "--check", "-k", "fig3b",
                     "--artifacts", str(artifacts)])
        out = capsys.readouterr().out
        assert code == 0
        assert "regression gate: PASS" in out

        # Perturb one headline number beyond tolerance: named failure.
        data = json.loads(source.read_text())
        data["headline"]["committed"]["MultiPaxSys"] = int(
            data["headline"]["committed"]["MultiPaxSys"] * 2
        )
        (artifacts / source.name).write_text(json.dumps(data))
        code = main(["bench", "--check", "-k", "fig3b",
                     "--artifacts", str(artifacts)])
        out = capsys.readouterr().out
        assert code == 1
        assert "committed.MultiPaxSys" in out
        assert "regression gate: FAIL" in out
