"""Tests for the flow & resource observability plane.

Four layers, mirroring ``tests/test_demand.py`` for the demand plane:
unit tests of the tracker's wire/queue/batch accounting, a
property-based guarantee that the high watermark is exactly the maximum
observed depth (the figure backpressure analysis reads), end-to-end
checks that a flow-enabled traced run validates and replays to a
byte-identical offline report, and the backpressure paths (bounded TCP
out-queues, saturated scale mailboxes) dropping *accountedly*.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.net.regions import Region
from repro.obs import (
    EventBus,
    FlowTracker,
    ResourceProbe,
    RingSink,
    WIRE_HEADER_BYTES,
    emit_flow_events,
    entity_table_bytes,
    format_flow_report,
    render_flow_prometheus,
    track_flow,
    validate_events,
)
from repro.obs.exposition import render_prometheus
from repro.obs.registry import MetricsRegistry, TraceMetricsFeed
from repro.scale.entity_table import COLUMNS, EntityTable
from repro.scale.harness import ScaleConfig, build_scale_deployment, run_scale
from repro.scale.site import ScaleSiteConfig
from repro.sim.kernel import Kernel
from repro.workload.trace import TraceConfig


class TestFlowTracker:
    def test_record_send_accumulates_by_type_and_link(self):
        tracker = FlowTracker()
        tracker.record_send("Ping", 100, 104, "us-west1", "us-east1")
        tracker.record_send("Ping", 200, 204, "us-west1", "us-east1")
        tracker.record_send("Pong", 50, 54, "us-east1", "us-west1")
        assert tracker.total_frames == 3
        assert tracker.total_payload_bytes == 350
        assert tracker.total_frame_bytes == 362
        rows = tracker.type_rows()
        # Heaviest first.
        assert [row["msg_type"] for row in rows] == ["Ping", "Pong"]
        assert rows[0]["mean_frame_bytes"] == 154.0
        links = tracker.link_rows()
        assert links[0]["src_region"] == "us-west1"
        assert links[0]["frame_bytes"] == 308

    def test_queue_gauge_semantics(self):
        tracker = FlowTracker()
        gauge = tracker.queue("q")
        assert tracker.queue("q") is gauge  # get-or-create caches
        gauge.enqueue(1)
        gauge.enqueue(2)
        gauge.dequeue(1)
        gauge.enqueue(2)
        gauge.drain(2, 0)
        gauge.drop()
        row = tracker.queue_rows()[0]
        assert row == {
            "queue": "q", "high": 2, "depth": 0,
            "enqueued": 3, "dequeued": 3, "dropped": 1,
        }

    def test_batch_ratios(self):
        tracker = FlowTracker()
        tracker.record_batch(4, envelope_bytes=90, inner_bytes=100)
        tracker.record_batch(2, envelope_bytes=60, inner_bytes=50)
        tracker.record_passthrough()
        batch = tracker.batch
        assert batch.coalescing_ratio == 3.0
        assert batch.overhead_ratio == 1.0
        snapshot = tracker.snapshot()
        assert snapshot["batch"]["passthrough"] == 1
        assert snapshot["batch"]["coalescing_ratio"] == 3.0

    def test_headline_shape(self):
        tracker = FlowTracker()
        tracker.record_send("Ping", 100, 104)
        tracker.record_batch(3, envelope_bytes=90, inner_bytes=120)
        headline = tracker.headline()
        assert headline["wire_frames"] == 1
        assert headline["wire_bytes"] == 104
        assert headline["bytes_per_frame"] == {"Ping": 104.0}
        assert headline["coalescing_ratio"] == 3.0
        assert headline["overhead_ratio"] == 0.75

    def test_empty_tracker_renders(self):
        tracker = FlowTracker()
        assert "0 frames" in format_flow_report(tracker)
        assert render_flow_prometheus(tracker) == ""


#: Random interleavings: enqueue, dequeue, batch drain, passive observe.
queue_ops = st.lists(
    st.one_of(
        st.just("enq"),
        st.just("deq"),
        st.integers(1, 5).map(lambda n: ("drain", n)),
        st.just("observe"),
    ),
    max_size=200,
)


class TestHighWatermarkProperty:
    @settings(max_examples=200, deadline=None)
    @given(ops=queue_ops)
    def test_high_watermark_is_max_observed_depth(self, ops):
        tracker = FlowTracker()
        gauge = tracker.queue("q")
        depth = 0
        peak = 0
        for op in ops:
            if op == "enq":
                depth += 1
                gauge.enqueue(depth)
            elif op == "deq":
                if depth == 0:
                    continue
                depth -= 1
                gauge.dequeue(depth)
            elif op == "observe":
                gauge.observe(depth)
            else:
                _, count = op
                count = min(count, depth)
                if count == 0:
                    continue
                depth -= count
                gauge.drain(count, depth)
            peak = max(peak, depth)
        assert gauge.high == peak
        assert gauge.depth == depth
        assert gauge.enqueued == gauge.dequeued + depth


def quick_config(**overrides):
    defaults = dict(
        duration=20.0,
        seed=5,
        flow=True,
        trace=TraceConfig(days=2.0),
        start_interval=0,
        invariant_interval=5.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def traced_run(config):
    sink = RingSink()
    experiment = Experiment(config, trace_sink=sink)
    experiment.run()
    return experiment, sink.events()


class TestEndToEnd:
    def test_flow_events_validate_and_replay_exactly(self):
        experiment, events = traced_run(quick_config())
        assert validate_events(events) == []
        live = experiment.flow_tracker
        assert live is not None and live.total_frames > 0
        by_type = {event["type"] for event in events}
        assert {"flow.link", "flow.type", "flow.queue"} <= by_type
        # A flow-enabled run stamps byte counts on every msg.send.
        sends = [event for event in events if event["type"] == "msg.send"]
        assert sends and all(
            event["frame_bytes"] == event["bytes"] + WIRE_HEADER_BYTES
            for event in sends
        )
        # Offline replay reconstructs exactly the live tracker's state.
        replayed = track_flow(iter(events))
        assert replayed.snapshot() == live.snapshot()
        assert format_flow_report(replayed) == format_flow_report(live)

    def test_same_seed_report_is_byte_identical(self):
        reports = [
            format_flow_report(track_flow(iter(traced_run(quick_config())[1])))
            for _ in range(2)
        ]
        assert reports[0] == reports[1]
        assert "wire bytes by message type" in reports[0]
        assert "queue watermarks" in reports[0]

    def test_flow_does_not_perturb_the_run(self):
        # The determinism contract: byte accounting observes, never
        # perturbs — the same seed commits the same requests with flow
        # on or off.
        on = Experiment(quick_config())
        off = Experiment(quick_config(flow=False))
        on_result = on.run()
        off_result = off.run()
        assert off.flow_tracker is None
        assert on_result.committed == off_result.committed
        assert on_result.rejected == off_result.rejected
        assert on_result.flow_snapshot is not None
        assert off_result.flow_snapshot is None

    def test_rollup_events_only_from_the_bus_owner(self):
        # emit_flow_events is deterministic and bounded: one flow.link
        # per pair, one flow.type per type, one flow.queue per gauge.
        tracker = FlowTracker()
        tracker.record_send("Ping", 10, 14, "a", "b")
        tracker.record_send("Pong", 10, 14, "b", "a")
        tracker.queue("q").enqueue(1)
        tracker.record_memory("collect", 12345)  # must NOT be emitted
        kernel = Kernel(seed=1)
        sink = RingSink()
        bus = EventBus(kernel, sink)
        kernel.schedule(1.0, lambda: emit_flow_events(bus, tracker))
        kernel.run(until=2.0)
        events = sink.events()
        assert validate_events(events) == []
        types = [event["type"] for event in events]
        assert types.count("flow.link") == 2
        assert types.count("flow.type") == 2
        assert types.count("flow.queue") == 1
        assert not any(t.startswith("flow.mem") for t in types)

    def test_prometheus_families_are_disjoint_from_the_feed(self):
        # A live scrape appends render_flow_prometheus after the
        # registry render; the two must never repeat a family name.
        registry = MetricsRegistry()
        feed = TraceMetricsFeed(registry)
        feed({"type": "msg.send", "msg_type": "Ping", "bytes": 10,
              "frame_bytes": 14, "ts": 0.0})
        tracker = FlowTracker()
        tracker.record_send("Ping", 10, 14, "a", "b")
        tracker.queue("q").enqueue(1)
        tracker.record_batch(2, envelope_bytes=20, inner_bytes=25)

        def families(text):
            return {
                line.split()[2]
                for line in text.splitlines()
                if line.startswith("# TYPE")
            }

        feed_families = families(render_prometheus(registry))
        flow_families = families(render_flow_prometheus(tracker))
        assert flow_families
        assert "repro_flow_wire_bytes_total" in feed_families
        assert not feed_families & flow_families


class TestTcpBackpressure:
    def test_full_out_queue_drops_accountedly(self):
        from repro.obs.bus import EventBus as Bus
        from repro.runtime.clock import LiveClock
        from repro.runtime.tcp_transport import TcpTransport

        async def scenario():
            clock = LiveClock(seed=0)
            clock.schedule(0.0, lambda: None)
            transport = TcpTransport(clock)
            transport.max_out_queue = 1
            sink = RingSink()
            transport.obs = Bus(clock, sink)
            transport.flow = FlowTracker()

            class Endpoint:
                def __init__(self, name):
                    self.name = name
                    self.crashed = False

                def on_message(self, message):
                    pass

            transport.attach(Endpoint("a"), Region.US_WEST1)
            transport.attach(Endpoint("b"), Region.US_WEST1)
            # No transport.start(): the writer task blocks connecting,
            # and the sends below run synchronously, so the queue fills
            # to the cap and overflows deterministically.
            for _ in range(3):
                transport.send("a", "b", "payload")
            await transport.aclose()
            return transport, sink

        transport, sink = asyncio.run(scenario())
        assert transport.backpressure_drops == 2
        gauge = transport.flow.queue("tcp.out.b")
        assert gauge.dropped == 2
        assert gauge.high == 1
        events = sink.events()
        assert validate_events(events) == []
        drops = [e for e in events if e["type"] == "flow.backpressure"]
        assert len(drops) == 2
        assert all(e["queue"] == "tcp.out.b" for e in drops)
        # Offline replay folds the per-drop events into the same count.
        replayed = track_flow(iter(events))
        assert replayed.queue("tcp.out.b").dropped == 2


class TestScaleMailboxSaturation:
    def test_saturated_mailbox_drops_and_balances(self):
        # All tokens at region 0 and a one-slot queue: the other
        # regions' acquires park behind redistributions and overflow.
        config = ScaleConfig(
            entities=40,
            regions=3,
            maximum=30,
            duration=10.0,
            rate=400.0,
            seed=5,
            hot_entities=12,
            placement="first",
            flow=True,
            site=ScaleSiteConfig(max_queue=1),
        )
        deployment = build_scale_deployment(config)
        result = run_scale(config, deployment=deployment)
        assert result.flow is not None
        mailboxes = [
            row for row in result.flow["queues"]
            if row["queue"].startswith("scale.mailbox.")
        ]
        assert len(mailboxes) == 3
        assert any(row["dropped"] > 0 for row in mailboxes)
        assert any(row["high"] > 0 for row in mailboxes)
        # Every queued request is accounted: still parked or drained.
        for row in mailboxes:
            assert row["enqueued"] == row["dequeued"] + row["depth"]
        # Exact columnar accounting rides the snapshot.
        per_host = result.flow["entity_table"]
        assert set(per_host) == {host.name for host in deployment.hosts}
        for host in deployment.hosts:
            accounting = per_host[host.name]
            assert accounting["rows"] == len(host.table)
            assert accounting["columns_bytes"] == sum(
                accounting["columns"].values()
            )


class TestResourceAccounting:
    def test_entity_table_bytes_is_exact(self):
        table = EntityTable()
        for i in range(17):
            table.add(f"e{i}", i)
        accounting = entity_table_bytes(table)
        assert accounting["rows"] == 17
        itemsize = table.tokens_left.itemsize
        assert set(accounting["columns"]) == set(COLUMNS)
        for name in COLUMNS:
            assert accounting["columns"][name] == 17 * itemsize
        assert accounting["columns_bytes"] == len(COLUMNS) * 17 * itemsize
        assert accounting["ids_bytes"] > 0
        assert accounting["index_bytes"] > 0

    def test_resource_probe_samples_into_the_tracker(self):
        tracker = FlowTracker()
        probe = ResourceProbe(tracker)
        sample = probe.sample("collect", ts=1.5)
        assert sample["rss_bytes"] > 0  # /proc/self/statm on Linux
        assert sample["peak_rss_bytes"] >= sample["rss_bytes"] // 2
        assert tracker.memory[0]["phase"] == "collect"
        assert tracker.memory[0]["ts"] == 1.5
        # Machine-dependent samples are snapshot-only, never in reports.
        assert "memory" in tracker.snapshot()
        assert "rss" not in format_flow_report(tracker)

    def test_resource_probe_tracemalloc_opt_in(self):
        probe = ResourceProbe(tracemalloc_enabled=True)
        probe.start()
        try:
            ballast = [object() for _ in range(1000)]
            sample = probe.sample("load")
            assert sample["traced_bytes"] > 0
            assert sample["traced_peak_bytes"] >= sample["traced_bytes"]
            del ballast
        finally:
            probe.stop()
        # Off by default: no traced fields, no tracemalloc started.
        assert "traced_bytes" not in ResourceProbe().sample("idle")
