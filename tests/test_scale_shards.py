"""Sharded entity directory: stable placement, O(1) routing, lifecycle."""

import pytest

from repro.core.directory import EntityDirectory
from repro.scale.shards import DirectoryShard, ShardMap, ShardedEntityDirectory


class TestShardMap:
    def test_placement_is_stable_across_instances(self):
        # crc32, not the salted builtin hash: two maps (or two processes)
        # must agree on every placement.
        a, b = ShardMap(64), ShardMap(64)
        for index in range(500):
            entity_id = f"e{index}"
            assert a.shard_of(entity_id) == b.shard_of(entity_id)

    def test_placement_pinned_cross_process(self):
        # Pin one concrete value: if this ever changes, persisted shard
        # assignments (and the sim's replay determinism) break.
        assert ShardMap(64).shard_of("e0") == 49

    def test_placement_in_range(self):
        shard_map = ShardMap(7)
        for index in range(200):
            assert 0 <= shard_map.shard_of(f"e{index}") < 7

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            ShardMap(0)


class TestShardedDirectory:
    def test_register_and_lookup(self):
        directory = ShardedEntityDirectory(n_shards=8)
        directory.register("VM", ("a", "b"))
        assert directory.lookup("VM") == ("a", "b")
        assert "VM" in directory
        assert len(directory) == 1

    def test_duplicate_registration_rejected(self):
        directory = ShardedEntityDirectory()
        directory.register("VM", 1)
        with pytest.raises(ValueError):
            directory.register("VM", 2)

    def test_lookup_miss_returns_none_and_counts(self):
        directory = ShardedEntityDirectory()
        assert directory.lookup("ghost") is None
        directory.register("VM", 1)
        directory.lookup("VM")
        assert directory.lookups == 2

    def test_unregister_is_idempotent(self):
        directory = ShardedEntityDirectory()
        directory.register("VM", 1)
        directory.unregister("VM")
        directory.unregister("VM")
        assert "VM" not in directory
        assert len(directory) == 0
        # The id can be reused after unregistration.
        directory.register("VM", 2)
        assert directory.lookup("VM") == 2

    def test_shard_sizes_partition_the_id_space(self):
        directory = ShardedEntityDirectory(n_shards=16)
        for index in range(1000):
            directory.register(f"e{index}", index)
        sizes = directory.shard_sizes()
        assert len(sizes) == 16
        assert sum(sizes) == 1000 == len(directory)
        # crc32 spreads sequential ids well enough that no shard is
        # empty and none hogs the keyspace.
        assert min(sizes) > 0
        assert max(sizes) < 4 * (1000 // 16)

    def test_entities_sorted_and_items_complete(self):
        directory = ShardedEntityDirectory(n_shards=4)
        ids = [f"e{index}" for index in range(50)]
        for entity_id in ids:
            directory.register(entity_id, entity_id.upper())
        assert directory.entities() == sorted(ids)
        assert dict(directory.items()) == {i: i.upper() for i in ids}

    def test_shard_accessors(self):
        directory = ShardedEntityDirectory(n_shards=4)
        directory.register("VM", 1)
        owner = directory.shard_map.shard_of("VM")
        assert isinstance(directory.shard(owner), DirectoryShard)
        assert "VM" in directory.shard(owner).records
        assert sum(len(shard) for shard in directory.shards()) == 1


class TestCoreDirectoryDelegation:
    """core.directory.EntityDirectory kept its flat-map API on shards."""

    def test_register_lookup_entities(self):
        directory = EntityDirectory()
        directory.register("VM", "routing-a")
        directory.register("disk-gb", "routing-b")
        assert directory.lookup("VM") == "routing-a"
        assert directory.lookup("nope") is None
        assert directory.entities() == ["VM", "disk-gb"]

    def test_lookup_counter_delegates(self):
        directory = EntityDirectory()
        directory.register("VM", "r")
        directory.lookup("VM")
        directory.lookup("VM")
        assert directory.lookups == 2
