"""Tests for stable storage, the consensus log, and the recovery WAL."""

import pytest

from repro.storage.recovery import RecoveryWal
from repro.storage.store import StableStore
from repro.storage.wal import LogEntry, WriteAheadLog


class TestStableStore:
    def test_round_trip(self):
        store = StableStore("s")
        store.put("k", {"a": 1})
        assert store.get("k") == {"a": 1}

    def test_get_default(self):
        store = StableStore("s")
        assert store.get("missing") is None
        assert store.get("missing", 7) == 7

    def test_stored_value_isolated_from_later_mutation(self):
        store = StableStore("s")
        value = {"tokens": 10}
        store.put("k", value)
        value["tokens"] = 0
        assert store.get("k") == {"tokens": 10}

    def test_read_value_isolated_from_store(self):
        store = StableStore("s")
        store.put("k", {"tokens": 10})
        read = store.get("k")
        read["tokens"] = 0
        assert store.get("k") == {"tokens": 10}

    def test_contains_and_delete(self):
        store = StableStore("s")
        store.put("k", 1)
        assert "k" in store
        store.delete("k")
        assert "k" not in store

    def test_wipe(self):
        store = StableStore("s")
        store.put("a", 1)
        store.put("b", 2)
        store.wipe()
        assert store.get("a") is None and store.get("b") is None

    def test_counters(self):
        store = StableStore("s")
        store.put("a", 1)
        store.get("a")
        store.get("b")
        assert store.writes == 1
        assert store.reads == 2

    def test_none_value_distinct_from_missing(self):
        store = StableStore("s")
        store.put("k", None)
        assert store.get("k", "default") is None


class TestRecoveryWal:
    def test_replay_returns_latest_value_per_key(self):
        wal = RecoveryWal("s")
        wal.append("entity", (100, 0))
        wal.append("entity", (80, 5))
        wal.append("avantan", {"ballot": 1})
        assert wal.replay() == {"entity": (80, 5), "avantan": {"ballot": 1}}

    def test_appended_value_isolated_from_later_mutation(self):
        wal = RecoveryWal("s")
        value = {"tokens": 10}
        wal.append("k", value)
        value["tokens"] = 0
        assert wal.replay()["k"] == {"tokens": 10}

    def test_replayed_value_isolated_from_log(self):
        wal = RecoveryWal("s")
        wal.append("k", {"tokens": 10})
        wal.replay()["k"]["tokens"] = 0
        assert wal.replay()["k"] == {"tokens": 10}

    def test_disabled_wal_discards_appends(self):
        wal = RecoveryWal("s")
        wal.append("k", 1)
        wal.enabled = False
        wal.append("k", 2)
        assert wal.replay() == {"k": 1}  # the stale-restore scenario
        assert wal.appends == 1
        assert wal.dropped_appends == 1

    def test_compact_keeps_latest_record_per_key(self):
        wal = RecoveryWal("s")
        for tokens in (100, 90, 80):
            wal.append("entity", tokens)
        wal.append("avantan", "state")
        assert wal.compact() == 2
        assert len(wal) == 2
        assert wal.replay() == {"entity": 80, "avantan": "state"}

    def test_compact_preserves_order(self):
        wal = RecoveryWal("s")
        wal.append("a", 1)
        wal.append("b", 2)
        wal.append("a", 3)
        wal.compact()
        assert wal.replay() == {"a": 3, "b": 2}

    def test_wipe_empties_the_log(self):
        wal = RecoveryWal("s")
        wal.append("k", 1)
        wal.wipe()
        assert wal.replay() == {}
        assert len(wal) == 0

    def test_counters(self):
        wal = RecoveryWal("s")
        wal.append("k", 1)
        wal.replay()
        wal.replay()
        assert wal.appends == 1
        assert wal.replays == 2


class TestWriteAheadLog:
    def test_append_assigns_sequential_indices(self):
        log = WriteAheadLog()
        first = log.append(1, "a")
        second = log.append(1, "b")
        assert (first.index, second.index) == (1, 2)
        assert log.last_index == 2

    def test_term_tracking(self):
        log = WriteAheadLog()
        log.append(1, "a")
        log.append(3, "b")
        assert log.last_term == 3
        assert log.term_at(1) == 1
        assert log.term_at(0) == 0

    def test_term_at_out_of_range_raises(self):
        log = WriteAheadLog()
        with pytest.raises(IndexError):
            log.term_at(1)

    def test_get_out_of_range_returns_none(self):
        log = WriteAheadLog()
        log.append(1, "a")
        assert log.get(0) is None
        assert log.get(2) is None
        assert log.get(1).command == "a"

    def test_slice_from(self):
        log = WriteAheadLog()
        for index in range(5):
            log.append(1, index)
        assert [entry.command for entry in log.slice_from(3)] == [2, 3, 4]
        assert [entry.command for entry in log.slice_from(0)] == [0, 1, 2, 3, 4]
        assert log.slice_from(6) == []

    def test_truncate_from(self):
        log = WriteAheadLog()
        for index in range(5):
            log.append(1, index)
        log.truncate_from(3)
        assert log.last_index == 2
        with pytest.raises(IndexError):
            log.truncate_from(0)

    def test_append_entry_must_extend(self):
        log = WriteAheadLog()
        log.append_entry(LogEntry(1, 1, "a"))
        with pytest.raises(IndexError):
            log.append_entry(LogEntry(3, 1, "c"))

    def test_iteration(self):
        log = WriteAheadLog()
        log.append(1, "a")
        log.append(2, "b")
        assert [entry.command for entry in log] == ["a", "b"]
