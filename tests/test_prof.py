"""Tests for the profilers (repro.obs.prof).

The stack sampler is wall-clock driven, so its tests assert structure
(collapsed format, frame naming) rather than counts.  The event
profiler is the deterministic half: the same seed must produce the
same per-callback event counts, sampler attached or not.
"""

import threading
import time

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.obs import prof
from repro.obs.prof import EventProfiler, StackSampler, profile_wall


def busy_wait(seconds):
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class TestStackSampler:
    def test_samples_the_calling_thread(self):
        sampler = StackSampler(interval=0.001)
        sampler.start()
        try:
            busy_wait(0.15)
        finally:
            sampler.stop()
        assert sampler.sample_count > 0
        lines = sampler.collapsed_lines()
        assert lines
        # Collapsed format: "frame;frame;... count", innermost last.
        stack, _, count = lines[0].rpartition(" ")
        assert int(count) >= 1
        assert ";" in stack
        assert any("busy_wait" in line for line in lines)

    def test_write_collapsed(self, tmp_path):
        sampler = StackSampler(interval=0.001)
        sampler.start()
        try:
            busy_wait(0.05)
        finally:
            sampler.stop()
        out = tmp_path / "profile.collapsed"
        written = sampler.write_collapsed(out)
        assert written == sampler.sample_count
        text = out.read_text(encoding="utf-8")
        assert text.endswith("\n")
        assert len(text.splitlines()) == len(sampler.samples)

    def test_stop_is_idempotent_and_restart_rejected(self):
        sampler = StackSampler(interval=0.001)
        sampler.start()
        sampler.stop()
        sampler.stop()
        sampler.start()  # fresh start after stop is allowed
        sampler.stop()

    def test_profile_wall_context_manager(self, tmp_path):
        out = tmp_path / "ctx.collapsed"
        with profile_wall(interval=0.001, out=out) as sampler:
            busy_wait(0.05)
        assert out.exists()
        assert sampler.sample_count >= 0  # stopped, file written
        assert not any(
            thread.name == "repro-stack-sampler"
            for thread in threading.enumerate()
        )


def run_profiled(seed):
    profiler = EventProfiler()
    prof.set_active(profiler)
    try:
        config = ExperimentConfig(duration=10.0, seed=seed, start_interval=0)
        Experiment(config).run()
    finally:
        prof.set_active(None)
    return profiler


class TestEventProfiler:
    def test_counts_are_seed_deterministic(self):
        first = run_profiled(seed=5)
        second = run_profiled(seed=5)
        assert first.events > 0
        assert dict(first.counts) == dict(second.counts)

    def test_keys_are_callback_identities(self):
        profiler = run_profiled(seed=5)
        assert all("." in key for key in profiler.counts)
        assert any(key.startswith("repro.") for key in profiler.counts)

    def test_rows_and_collapsed_shapes(self):
        profiler = run_profiled(seed=5)
        rows = profiler.rows(limit=5)
        assert rows and len(rows) <= 5
        assert all(len(row) == 5 for row in rows)
        lines = profiler.collapsed_lines()
        assert len(lines) == len(profiler.counts)
        snapshot = profiler.snapshot()
        assert snapshot["events"] == profiler.events
        assert set(snapshot["callbacks"]) == set(profiler.counts)

    def test_seam_defaults_to_none(self):
        assert prof.active() is None
