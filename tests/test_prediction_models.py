"""Tests for the prediction models (random walk, seasonal, oracle, ARIMA)."""

import math
import random

import numpy as np
import pytest

from repro.prediction.arima import ArimaModel, ArimaPredictor
from repro.prediction.base import DemandHistory
from repro.prediction.evaluation import evaluate_predictor, train_test_split
from repro.prediction.oracle import OraclePredictor
from repro.prediction.random_walk import RandomWalkPredictor
from repro.prediction.seasonal import SeasonalNaivePredictor


class TestDemandHistory:
    def test_epoch_accumulation(self):
        history = DemandHistory()
        history.record_demand(3)
        history.record_demand(4)
        assert history.close_epoch() == 7
        assert history.values() == [7]

    def test_empty_epochs_are_zero(self):
        history = DemandHistory()
        history.close_epoch()
        history.close_epoch()
        assert history.values() == [0.0, 0.0]

    def test_capacity_bound(self):
        history = DemandHistory(capacity=3)
        for value in range(5):
            history.record_demand(value)
            history.close_epoch()
        assert history.values() == [2, 3, 4]

    def test_last(self):
        history = DemandHistory()
        for value in range(5):
            history.record_demand(value)
            history.close_epoch()
        assert history.last(2) == [3, 4]
        assert history.last(0) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DemandHistory(capacity=0)


class TestRandomWalk:
    def test_forecast_is_last_value(self):
        predictor = RandomWalkPredictor()
        for value in (5.0, 9.0, 2.0):
            predictor.update(value)
        assert predictor.forecast() == 2.0

    def test_empty_history_forecasts_zero(self):
        assert RandomWalkPredictor().forecast() == 0.0

    def test_drift(self):
        predictor = RandomWalkPredictor(drift_window=2)
        for value in (1.0, 2.0, 3.0):
            predictor.update(value)
        assert predictor.forecast() == pytest.approx(4.0)

    def test_never_negative(self):
        predictor = RandomWalkPredictor(drift_window=1)
        predictor.update(5.0)
        predictor.update(0.0)
        assert predictor.forecast() == 0.0


class TestSeasonalNaive:
    def test_uses_value_one_period_ago(self):
        predictor = SeasonalNaivePredictor(period=3, seasons=1)
        for value in (10.0, 20.0, 30.0, 11.0, 21.0):
            predictor.update(value)
        # Next position is index 5; one period back is index 2 -> 30.
        assert predictor.forecast() == 30.0

    def test_averages_multiple_seasons(self):
        predictor = SeasonalNaivePredictor(period=2, seasons=2)
        for value in (10.0, 0.0, 20.0, 0.0):
            predictor.update(value)
        assert predictor.forecast() == pytest.approx(15.0)

    def test_falls_back_to_random_walk_without_a_full_period(self):
        predictor = SeasonalNaivePredictor(period=100)
        predictor.update(42.0)
        assert predictor.forecast() == 42.0

    def test_perfect_on_exactly_periodic_series(self):
        predictor = SeasonalNaivePredictor(period=4, seasons=1)
        series = [float(10 + (i % 4)) for i in range(40)]
        train, test = train_test_split(series, 0.5)
        report = evaluate_predictor(predictor, train, test)
        assert report.mae == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(period=0)
        with pytest.raises(ValueError):
            SeasonalNaivePredictor(period=2, seasons=0)


class TestOracle:
    def test_reads_the_future(self):
        predictor = OraclePredictor([10.0, 20.0, 30.0])
        assert predictor.forecast() == 10.0
        predictor.update(10.0)
        assert predictor.forecast() == 20.0

    def test_past_the_end_returns_zero(self):
        predictor = OraclePredictor([1.0])
        predictor.update(1.0)
        assert predictor.forecast() == 0.0

    def test_noise_perturbs_deterministically(self):
        a = OraclePredictor([100.0], noise=0.2, seed=3)
        b = OraclePredictor([100.0], noise=0.2, seed=3)
        assert a.forecast() == b.forecast()
        assert a.forecast() != 100.0


def ar1_series(phi, n=800, sigma=1.0, seed=0, mean=50.0):
    rng = random.Random(seed)
    values = [mean]
    for _ in range(n - 1):
        values.append(mean + phi * (values[-1] - mean) + rng.gauss(0, sigma))
    return values


class TestArima:
    def test_recovers_ar1_coefficient(self):
        series = ar1_series(phi=0.7)
        model = ArimaModel(p=1, d=0, q=0)
        model.fit(series)
        assert model.phi[0] == pytest.approx(0.7, abs=0.08)

    def test_one_step_forecast_beats_random_walk_on_ar_process(self):
        # phi = 0.5 is far from a random walk, so the AR model's edge is
        # decisive rather than seed-dependent.
        series = ar1_series(phi=0.5, seed=1)
        predictor = ArimaPredictor(p=1, d=0, q=1)
        train, test = train_test_split(series, 0.8)
        report = evaluate_predictor(predictor, train, test)
        naive = evaluate_predictor(RandomWalkPredictor(), train, test)
        assert report.rmse < naive.rmse
        assert report.mae < naive.mae

    def test_differencing_handles_linear_trend(self):
        series = [2.0 * i + 10.0 for i in range(200)]
        predictor = ArimaPredictor(p=2, d=1, q=0)
        predictor.fit(series)
        # Next value of the trend is 2*200+10 = 410.
        assert predictor.forecast() == pytest.approx(410.0, abs=1.0)

    def test_refit_interval_triggers_retraining(self):
        predictor = ArimaPredictor(p=1, d=0, q=0, refit_interval=50)
        predictor.fit(ar1_series(phi=0.3, n=200))
        phi_before = float(predictor.model.phi[0])
        for value in ar1_series(phi=0.9, n=120, seed=2):
            predictor.update(value)
        assert float(predictor.model.phi[0]) != phi_before

    def test_forecast_before_fit_falls_back_to_random_walk(self):
        predictor = ArimaPredictor()
        predictor.update(5.0)
        assert predictor.forecast() == 5.0

    def test_invalid_orders(self):
        with pytest.raises(ValueError):
            ArimaModel(p=0, d=0, q=0)
        with pytest.raises(ValueError):
            ArimaModel(p=-1, d=0, q=1)

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            ArimaModel(p=4, d=1, q=1).fit([1.0, 2.0, 3.0])

    def test_forecast_never_negative(self):
        predictor = ArimaPredictor(p=1, d=1, q=0)
        predictor.fit([100.0 - i for i in range(60)])  # falling trend
        for _ in range(5):
            predictor.update(0.0)
        assert predictor.forecast() >= 0.0


class TestEvaluation:
    def test_split_is_chronological(self):
        train, test = train_test_split(list(range(10)), 0.8)
        assert train == list(range(8))
        assert test == [8, 9]

    def test_split_bounds(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], 0.0)
        with pytest.raises(ValueError):
            train_test_split([1], 0.5)

    def test_walk_forward_never_peeks(self):
        class Parrot(RandomWalkPredictor):
            pass

        series = [1.0, 2.0, 3.0, 4.0, 5.0]
        report = evaluate_predictor(Parrot(), series[:3], series[3:])
        # Forecast for 4.0 is 3.0 (last train value), for 5.0 is 4.0.
        assert report.predictions == [3.0, 4.0]
        assert report.mae == pytest.approx(1.0)

    def test_empty_test_raises(self):
        with pytest.raises(ValueError):
            evaluate_predictor(RandomWalkPredictor(), [1.0], [])
