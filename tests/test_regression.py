"""Tests for the benchmark regression gate (repro.harness.regression)."""

import json

import pytest

from repro.harness.regression import (
    BenchSpec,
    Tolerance,
    check_artifacts,
    compare_payloads,
    format_report,
    load_specs,
    numeric_leaves,
    update_baselines,
)
from repro.harness.report import BENCH_SCHEMA


def payload(headline, seed=3, **extra):
    base = {"bench": "x", "schema": BENCH_SCHEMA, "git_sha": "abc1234",
            "headline": headline, "seed": seed}
    base.update(extra)
    return base


class TestTolerance:
    def test_relative(self):
        tolerance = Tolerance(rel=0.10)
        assert tolerance.allows(100.0, 109.9)
        assert tolerance.allows(100.0, 90.1)
        assert not tolerance.allows(100.0, 111.0)

    def test_absolute_floor_for_small_baselines(self):
        tolerance = Tolerance(rel=0.10, abs=5.0)
        # 10% of 3 is 0.3; the absolute slack keeps tiny counts sane.
        assert tolerance.allows(3.0, 7.0)
        assert not tolerance.allows(3.0, 9.0)

    def test_exact_by_default(self):
        assert Tolerance().allows(5.0, 5.0)
        assert not Tolerance().allows(5.0, 5.0001)

    def test_describe(self):
        assert Tolerance(rel=0.10).describe() == "±10%"
        assert Tolerance(rel=0.25, abs=1.0).describe() == "±25% or ±1"


class TestNumericLeaves:
    def test_nested_paths(self):
        leaves = numeric_leaves({"a": {"b": 1, "c": {"d": 2.5}}, "e": 3})
        assert leaves == {"a.b": 1.0, "a.c.d": 2.5, "e": 3.0}

    def test_non_numeric_skipped(self):
        leaves = numeric_leaves({"s": "text", "flag": True, "xs": [1, 2], "n": 4})
        assert leaves == {"n": 4.0}


class TestSpecSelection:
    def test_longest_prefix_override_wins(self):
        spec = BenchSpec(
            name="x",
            default=Tolerance(rel=0.1),
            overrides={
                "p99_ms": Tolerance(rel=0.25),
                "p99_ms.slow": Tolerance(rel=0.5),
            },
        )
        assert spec.tolerance_for("p99_ms.slow").rel == 0.5
        assert spec.tolerance_for("p99_ms.fast").rel == 0.25
        assert spec.tolerance_for("committed.a").rel == 0.1

    def test_ignore_prefixes(self):
        spec = BenchSpec(name="x", ignore=("debug",))
        assert spec.ignored("debug.counter")
        assert not spec.ignored("debugging")  # prefix match is dotted


class TestComparePayloads:
    SPEC = BenchSpec(name="x", default=Tolerance(rel=0.10))

    def test_within_tolerance_passes(self):
        findings = compare_payloads(
            payload({"tps": 105.0}), payload({"tps": 100.0}), self.SPEC
        )
        assert findings == []

    def test_regression_names_the_metric(self):
        findings = compare_payloads(
            payload({"group": {"tps": 80.0}}),
            payload({"group": {"tps": 100.0}}),
            self.SPEC,
        )
        (finding,) = findings
        assert finding.kind == "regression" and finding.fatal
        assert finding.metric == "group.tps"
        assert "-20.0%" in finding.detail

    def test_missing_and_extra_metrics_fatal(self):
        findings = compare_payloads(
            payload({"new": 1.0}), payload({"old": 1.0}), self.SPEC
        )
        kinds = sorted(finding.kind for finding in findings)
        assert kinds == ["extra", "missing"]
        assert all(finding.fatal for finding in findings)

    def test_seed_mismatch_refuses_comparison(self):
        findings = compare_payloads(
            payload({"tps": 1.0}, seed=4), payload({"tps": 999.0}, seed=3),
            self.SPEC,
        )
        (finding,) = findings
        assert finding.kind == "seed" and finding.fatal

    def test_legacy_baseline_backfilled_as_note(self):
        legacy = {"bench": "x", "headline": {"tps": 100.0}}  # bench-json/1
        findings = compare_payloads(payload({"tps": 100.0}), legacy, self.SPEC)
        (finding,) = findings
        assert finding.kind == "note" and not finding.fatal
        assert "backfilled" in finding.detail


class TestCalibratedMetrics:
    """Wall-clock metrics gated as ratios against the machine calibration."""

    SPEC = BenchSpec(
        name="x",
        default=Tolerance(rel=0.05),
        calibrated={"wall_events_per_sec": Tolerance(rel=0.5)},
    )

    def test_faster_machine_with_same_ratio_passes(self):
        # Current machine dispatches 2x faster and the workload scaled
        # with it: identical ratio, no drift, despite a 2x raw delta
        # that the plain ±5% tolerance would reject.
        findings = compare_payloads(
            payload({"wall_events_per_sec": 200_000.0}, calibration=2_000_000.0),
            payload({"wall_events_per_sec": 100_000.0}, calibration=1_000_000.0),
            self.SPEC,
        )
        assert findings == []

    def test_relative_slowdown_fails(self):
        # Same machine speed, workload 3x slower: a real regression.
        findings = compare_payloads(
            payload({"wall_events_per_sec": 33_000.0}, calibration=1_000_000.0),
            payload({"wall_events_per_sec": 100_000.0}, calibration=1_000_000.0),
            self.SPEC,
        )
        (finding,) = findings
        assert finding.kind == "regression" and finding.fatal
        assert finding.metric == "wall_events_per_sec"
        assert "calibrated ratio" in finding.detail

    def test_missing_calibration_downgrades_to_note(self):
        findings = compare_payloads(
            payload({"wall_events_per_sec": 33_000.0}, calibration=1_000_000.0),
            payload({"wall_events_per_sec": 100_000.0}),  # no stamp
            self.SPEC,
        )
        (finding,) = findings
        assert finding.kind == "note" and not finding.fatal
        assert "calibration" in finding.detail

    def test_uncalibrated_metrics_keep_plain_tolerance(self):
        findings = compare_payloads(
            payload({"tps": 80.0}, calibration=1_000_000.0),
            payload({"tps": 100.0}, calibration=1_000_000.0),
            self.SPEC,
        )
        (finding,) = findings
        assert finding.kind == "regression" and finding.metric == "tps"

    def test_calibration_point_is_cached_and_positive(self):
        from repro.harness import calibration

        calibration._CACHED = None
        try:
            first = calibration.calibration_point(events=5_000)
            second = calibration.calibration_point(events=5_000_000)
            assert first > 0
            assert second == first  # cached: the second call never reruns
        finally:
            calibration._CACHED = None


class TestDirectories:
    def _write(self, directory, name, data):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"BENCH_{name}.json").write_text(json.dumps(data))

    def test_check_artifacts_pass_and_fail(self, tmp_path):
        artifacts, baselines = tmp_path / "a", tmp_path / "b"
        self._write(artifacts, "one", payload({"tps": 100.0}))
        self._write(baselines, "one", payload({"tps": 101.0}))
        findings, compared = check_artifacts(artifacts, baselines, {"one"})
        assert findings == [] and compared == 1

        self._write(baselines, "one", payload({"tps": 200.0}))
        findings, _ = check_artifacts(artifacts, baselines, {"one"})
        assert any(finding.kind == "regression" for finding in findings)

    def test_missing_baseline_is_fatal(self, tmp_path):
        artifacts, baselines = tmp_path / "a", tmp_path / "b"
        baselines.mkdir()
        self._write(artifacts, "one", payload({"tps": 1.0}))
        findings, compared = check_artifacts(artifacts, baselines, {"one"})
        assert compared == 0
        assert findings[0].fatal and "no committed baseline" in findings[0].detail

    def test_selection_skips_unselected_baselines(self, tmp_path):
        artifacts, baselines = tmp_path / "a", tmp_path / "b"
        self._write(artifacts, "one", payload({"tps": 1.0}))
        self._write(baselines, "one", payload({"tps": 1.0}))
        self._write(baselines, "two", payload({"tps": 9.0}))
        # A subset run must not fail on baselines it did not run.
        findings, compared = check_artifacts(artifacts, baselines, {"one"})
        assert findings == [] and compared == 1

    def test_update_baselines_backfills_provenance(self, tmp_path):
        artifacts, baselines = tmp_path / "a", tmp_path / "b"
        self._write(artifacts, "one", {"bench": "one", "headline": {"t": 1}})
        (written,) = update_baselines(artifacts, baselines, {"one"})
        promoted = json.loads(written.read_text())
        assert promoted["schema"] == BENCH_SCHEMA
        assert "git_sha" in promoted

    def test_format_report_verdicts(self, tmp_path):
        artifacts, baselines = tmp_path / "a", tmp_path / "b"
        self._write(artifacts, "one", payload({"tps": 50.0}))
        self._write(baselines, "one", payload({"tps": 100.0}))
        findings, compared = check_artifacts(artifacts, baselines, {"one"})
        report = format_report(findings, compared, 1)
        assert "FAIL" in report and "tps" in report
        clean = format_report([], 1, 1)
        assert clean.startswith("regression gate: PASS")


class TestRegisteredSpecs:
    def test_every_committed_baseline_has_a_spec(self):
        from repro.harness.regression import default_baseline_dir

        specs = load_specs()
        committed = {
            path.name[len("BENCH_"):-len(".json")]
            for path in default_baseline_dir().glob("BENCH_*.json")
        }
        assert committed, "baselines must be committed"
        missing = committed - set(specs)
        assert not missing, f"baselines without register_baseline: {missing}"

    def test_committed_baselines_carry_provenance(self):
        from repro.harness.regression import default_baseline_dir

        for path in default_baseline_dir().glob("BENCH_*.json"):
            data = json.loads(path.read_text())
            assert data.get("schema") == BENCH_SCHEMA, path.name
            assert "git_sha" in data, path.name
            assert "headline" in data, path.name
