"""Tests for the conservation checker itself: it must catch real leaks."""

import pytest

from repro.metrics.invariants import ConservationChecker, InvariantViolation

from tests.helpers import MiniCluster, acquire_burst


class TestConservationChecker:
    def test_clean_cluster_passes(self):
        mini = MiniCluster(maximum=300)
        mini.client_for(mini.site(0).region, acquire_burst(1.0, 50))
        mini.run(until=5.0)
        mini.check()

    def test_detects_minted_tokens(self):
        mini = MiniCluster(maximum=300)
        mini.run(until=1.0)
        mini.site(0).state.tokens_left += 7  # corrupt
        with pytest.raises(InvariantViolation):
            mini.check()

    def test_detects_destroyed_tokens(self):
        mini = MiniCluster(maximum=300)
        mini.run(until=1.0)
        mini.site(0).state.tokens_left -= 1
        with pytest.raises(InvariantViolation):
            mini.check()

    def test_detects_ledger_mismatch(self):
        mini = MiniCluster(maximum=300)
        mini.client_for(mini.site(0).region, acquire_burst(1.0, 10))
        mini.run(until=5.0)
        mini.site(0).counters["acquired_tokens"] += 5  # phantom grants
        with pytest.raises(InvariantViolation):
            mini.check()

    def test_detects_allocation_disagreement(self):
        """If two sites ever derived different grants for the same value,
        Avantan agreement (Theorems 1-2) would be broken."""
        mini = MiniCluster(maximum=300)
        checker = mini.checker

        class FakeValue:
            value_id = "v1"
            participants = ("a", "b")
            states = ()

        class FakeSite:
            name = "a"

        checker._on_apply(FakeSite(), FakeValue(), {"a": 10, "b": 0})
        FakeSite.name = "b"
        with pytest.raises(InvariantViolation):
            checker._on_apply(FakeSite(), FakeValue(), {"a": 0, "b": 10})

    def test_periodic_install_runs_audits(self):
        mini = MiniCluster(maximum=300)
        mini.checker.install_periodic(mini.kernel, interval=1.0, until=5.0)
        mini.run(until=6.0)
        assert mini.checker.checks >= 4
