"""Tests for configuration validation."""

import pytest

from repro.core.config import AvantanVariant, SamyaConfig
from repro.net.network import NetworkConfig


class TestSamyaConfig:
    def test_defaults_are_sane(self):
        config = SamyaConfig()
        assert config.variant is AvantanVariant.MAJORITY
        assert config.enforce_constraint
        assert config.redistribute
        assert config.proactive

    def test_epoch_must_be_positive(self):
        with pytest.raises(ValueError):
            SamyaConfig(epoch_seconds=0.0)
        with pytest.raises(ValueError):
            SamyaConfig(epoch_seconds=-1.0)

    def test_service_times_must_be_non_negative(self):
        with pytest.raises(ValueError):
            SamyaConfig(service_time=-0.001)
        with pytest.raises(ValueError):
            SamyaConfig(protocol_service_time=-0.001)
        SamyaConfig(service_time=0.0)  # zero is allowed

    def test_variant_enum_round_trip(self):
        assert AvantanVariant("majority") is AvantanVariant.MAJORITY
        assert AvantanVariant("star") is AvantanVariant.STAR


class TestNetworkConfig:
    def test_defaults(self):
        config = NetworkConfig()
        assert config.loss_probability == 0.0
        assert config.jitter_sigma > 0.0
