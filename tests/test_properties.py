"""Property-based end-to-end tests: conservation and the Eq. 1 constraint
survive arbitrary workloads, fault schedules, and both Avantan variants.

These are the highest-leverage tests in the suite: hypothesis explores
request patterns and crash timings no hand-written scenario covers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import AvantanVariant
from repro.core.client import Operation
from repro.core.requests import RequestKind

from tests.helpers import MiniCluster

workload = st.lists(
    st.tuples(
        st.floats(0.1, 20.0),            # issue time
        st.sampled_from([RequestKind.ACQUIRE, RequestKind.RELEASE]),
        st.integers(1, 20),              # amount
        st.integers(0, 2),               # client region index
    ),
    min_size=1,
    max_size=80,
)

variants = st.sampled_from([AvantanVariant.MAJORITY, AvantanVariant.STAR])


def run_workload(variant, operations, seed, loss=0.0, crash_plan=()):
    mini = MiniCluster(variant=variant, maximum=120, seed=seed, loss=loss)
    per_region: dict[int, list[Operation]] = {0: [], 1: [], 2: []}
    for time, kind, amount, region_index in operations:
        per_region[region_index].append(Operation(time, kind, amount))
    for region_index, ops in per_region.items():
        if ops:
            mini.client_for(mini.site(region_index).region, ops)
    for crash_at, recover_at, site_index in crash_plan:
        site = mini.site(site_index)
        mini.kernel.schedule(crash_at, site.crash)
        if recover_at is not None:
            mini.kernel.schedule(max(recover_at, crash_at + 0.01), site.recover)
    mini.run(until=60.0)
    return mini


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=workload, variant=variants, seed=st.integers(0, 10_000))
def test_conservation_for_arbitrary_workloads(operations, variant, seed):
    mini = run_workload(variant, operations, seed)
    mini.check()
    # Every request got an answer: nothing is stranded in a queue.
    assert all(not site._pending for site in mini.sites)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=workload,
    variant=variants,
    seed=st.integers(0, 10_000),
    loss=st.sampled_from([0.0, 0.02, 0.1]),
)
def test_conservation_under_message_loss(operations, variant, seed, loss):
    mini = run_workload(variant, operations, seed, loss=loss)
    mini.check()


crash_plans = st.lists(
    st.tuples(
        st.floats(0.5, 15.0),                       # crash time
        st.one_of(st.none(), st.floats(1.0, 30.0)),  # recovery time (or never)
        st.integers(0, 2),                          # which site
    ),
    max_size=2,
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=workload,
    variant=variants,
    seed=st.integers(0, 10_000),
    crash_plan=crash_plans,
)
def test_conservation_under_crashes(operations, variant, seed, crash_plan):
    mini = run_workload(variant, operations, seed, crash_plan=crash_plan)
    mini.check()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=workload, variant=variants, seed=st.integers(0, 10_000))
def test_constraint_never_exceeded_during_run(operations, variant, seed):
    """Eq. 1, checked continuously rather than only at the end."""
    mini = MiniCluster(variant=variant, maximum=120, seed=seed)
    per_region: dict[int, list[Operation]] = {0: [], 1: [], 2: []}
    for time, kind, amount, region_index in operations:
        per_region[region_index].append(Operation(time, kind, amount))
    for region_index, ops in per_region.items():
        if ops:
            mini.client_for(mini.site(region_index).region, ops)
    mini.checker.install_periodic(mini.kernel, interval=0.5, until=40.0)
    mini.run(until=60.0)
    mini.check()
    assert mini.checker.checks >= 10


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(variant=variants, seed=st.integers(0, 10_000))
def test_identical_seeds_replay_identically(variant, seed):
    """Full-stack determinism: same seed, same committed count and same
    final balances."""

    def run():
        ops = [(float(i % 7) + 0.2, RequestKind.ACQUIRE, 1 + i % 3, i % 3) for i in range(40)]
        mini = run_workload(variant, ops, seed)
        return (
            mini.metrics.committed,
            tuple(site.state.tokens_left for site in mini.sites),
            mini.kernel.events_fired,
        )

    assert run() == run()
