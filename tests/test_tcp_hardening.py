"""Tests for the hardened TCP write path: accounted drops, bounded
retry with backoff, and the per-peer circuit breaker.

These run on real localhost sockets with wall-clock timeouts tightened
to keep each scenario under a second.
"""

from __future__ import annotations

import asyncio

from repro.net.regions import Region
from repro.obs.bus import EventBus, RingSink
from repro.runtime.clock import LiveClock
from repro.runtime.tcp_transport import TcpTransport


class Endpoint:
    def __init__(self, name):
        self.name = name
        self.crashed = False
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def build(clock):
    clock.schedule(0.0, lambda: None)  # bind the clock to the running loop
    transport = TcpTransport(clock)
    # Tighten wall-clock tunables so failure paths resolve fast.
    transport.address_wait = 0.05
    transport.backoff_base = 0.01
    transport.backoff_cap = 0.05
    transport.circuit_cooldown = 0.15
    sink = RingSink()
    transport.obs = EventBus(clock, sink)
    a, b = Endpoint("a"), Endpoint("b")
    transport.attach(a, Region.US_WEST1)
    transport.attach(b, Region.US_WEST1)
    return transport, sink, a, b


def drop_reasons(sink):
    return [e["reason"] for e in sink.events() if e["type"] == "msg.drop"]


def circuit_states(sink):
    return [e["state"] for e in sink.events() if e["type"] == "fault.circuit"]


class TestConnectFailure:
    def test_connect_failed_drop_is_counted_and_traced(self):
        """A frame to a peer whose server never comes up must be
        accounted — drop counter plus a msg.drop event — not lost."""

        async def scenario():
            clock = LiveClock(seed=0)
            transport, sink, a, b = build(clock)
            # No transport.start(): b has no listening address.
            transport.send("a", "b", "doomed")
            await asyncio.sleep(0.2)
            await transport.aclose()
            return transport, sink

        transport, sink = asyncio.run(scenario())
        assert transport.messages_dropped == 1
        assert drop_reasons(sink) == ["connect-failed"]
        # One send, zero deliveries, one drop: accounting balances.
        assert transport.messages_sent == 1
        assert transport.messages_delivered == 0


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        async def scenario():
            clock = LiveClock(seed=0)
            transport, sink, a, b = build(clock)
            transport.circuit_cooldown = 10.0  # stay open for the test
            for _ in range(transport.circuit_threshold):
                transport.send("a", "b", "x")
                await asyncio.sleep(0.1)
            # Circuit now open: this frame is shed without the 50 ms
            # address wait.
            before = clock.now
            transport.send("a", "b", "fast-fail")
            await asyncio.sleep(0.02)
            elapsed = clock.now - before
            await transport.aclose()
            return transport, sink, elapsed

        transport, sink, elapsed = asyncio.run(scenario())
        assert circuit_states(sink) == ["open"]
        reasons = drop_reasons(sink)
        assert reasons.count("connect-failed") == transport.circuit_threshold
        assert reasons[-1] == "circuit-open"
        assert elapsed < transport.address_wait

    def test_half_open_probe_reopens_while_peer_still_dead(self):
        async def scenario():
            clock = LiveClock(seed=0)
            transport, sink, a, b = build(clock)
            for _ in range(transport.circuit_threshold):
                transport.send("a", "b", "x")
                await asyncio.sleep(0.1)
            await asyncio.sleep(transport.circuit_cooldown)
            transport.send("a", "b", "probe")  # half-open, still no server
            await asyncio.sleep(0.2)
            await transport.aclose()
            return transport, sink

        transport, sink = asyncio.run(scenario())
        assert circuit_states(sink) == ["open", "half-open", "open"]

    def test_closes_again_once_peer_comes_back(self):
        async def scenario():
            clock = LiveClock(seed=0)
            transport, sink, a, b = build(clock)
            for _ in range(transport.circuit_threshold):
                transport.send("a", "b", "x")
                await asyncio.sleep(0.1)
            await transport.start()  # b's server finally binds
            await asyncio.sleep(transport.circuit_cooldown)
            transport.send("a", "b", "recovered")
            await asyncio.sleep(0.3)
            await transport.aclose()
            return transport, sink, b

        transport, sink, b = asyncio.run(scenario())
        assert circuit_states(sink) == ["open", "half-open", "closed"]
        assert [m.payload for m in b.received] == ["recovered"]
        assert transport.messages_delivered == 1

    def test_healthy_path_never_touches_the_circuit(self):
        async def scenario():
            clock = LiveClock(seed=0)
            transport, sink, a, b = build(clock)
            await transport.start()
            for index in range(5):
                transport.send("a", "b", index)
            await asyncio.sleep(0.3)
            await transport.aclose()
            return transport, sink, b

        transport, sink, b = asyncio.run(scenario())
        assert len(b.received) == 5
        assert circuit_states(sink) == []
        assert transport.messages_dropped == 0
        assert transport.send_timeouts == 0


class TestBackoff:
    def test_backoff_is_exponential_jittered_and_capped(self):
        clock = LiveClock(seed=0)
        transport = TcpTransport(clock)
        transport.backoff_base = 0.05
        transport.backoff_cap = 0.2
        for attempt in range(8):
            ideal = min(transport.backoff_cap, transport.backoff_base * 2**attempt)
            for _ in range(20):
                delay = transport._backoff(attempt)
                assert 0.5 * ideal <= delay <= 1.5 * ideal
