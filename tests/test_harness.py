"""Tests for the experiment harness: configs, builds, fault resolution."""

import pytest

from repro.core.cluster import split_initial_allocation
from repro.harness.experiment import (
    ExperimentConfig,
    build_experiment,
    run_experiment,
    variant_configs,
)
from repro.harness.report import (
    format_series,
    format_table,
    ratio,
    write_bench_json,
)
from repro.harness.scenarios import (
    RegionFault,
    partition_3_2,
    progressive_region_crashes,
    resolve_faults,
)
from repro.net.regions import PAPER_REGIONS, Region
from repro.workload.trace import TraceConfig


def quick_config(**overrides):
    defaults = dict(
        duration=20.0,
        seed=2,
        trace=TraceConfig(days=2.0),
        start_interval=0,
        invariant_interval=5.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConfigValidation:
    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(system="spanner")

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(predictor="crystal-ball")

    def test_unknown_reallocator_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(reallocator="coin-flip")

    def test_variant_configs(self):
        variants = variant_configs(quick_config())
        assert set(variants) == {"samya-majority", "samya-star"}


class TestBuilds:
    @pytest.mark.parametrize(
        "system", ["samya-majority", "samya-star", "multipaxsys", "crdb", "demarcation"]
    )
    def test_every_system_builds_and_runs(self, system):
        result = run_experiment(quick_config(system=system))
        assert result.system == system
        assert result.committed >= 0
        assert result.duration == 20.0

    def test_samya_run_commits_and_conserves(self):
        result = run_experiment(quick_config(system="samya-majority"))
        assert result.committed > 0
        assert result.invariant_checks > 0
        assert result.tokens_left_total is not None

    def test_predictors_wire_into_sites(self):
        experiment = build_experiment(quick_config(predictor="seasonal"))
        assert all(site.predictor is not None for site in experiment.cluster.sites)
        experiment = build_experiment(quick_config(predictor="none"))
        assert all(site.predictor is None for site in experiment.cluster.sites)

    def test_oracle_predictor_reads_future(self):
        experiment = build_experiment(quick_config(predictor="oracle"))
        site = experiment.cluster.sites[0]
        assert site.predictor.forecast() >= 0.0

    def test_sites_per_region(self):
        experiment = build_experiment(quick_config(sites_per_region=2))
        assert len(experiment.cluster.sites) == 10

    def test_initial_allocation_sums_to_maximum(self):
        experiment = build_experiment(quick_config(maximum=5003))
        assert experiment.cluster.total_tokens_left() == 5003

    def test_read_ratio_produces_reads(self):
        result = run_experiment(quick_config(read_ratio=0.5))
        assert result.committed_reads > 0

    def test_paper_literal_reactive_flag(self):
        experiment = build_experiment(
            quick_config(predictor="none", paper_literal_reactive=True)
        )
        config = experiment.cluster.sites[0].config
        assert config.reactive_wanted_literal
        assert config.queue_during_cooldown


class TestAllocationSplit:
    def test_even_split(self):
        assert split_initial_allocation(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_first_sites(self):
        assert split_initial_allocation(10, 3) == [4, 3, 3]

    def test_zero_sites_rejected(self):
        with pytest.raises(ValueError):
            split_initial_allocation(10, 0)


class TestScenarios:
    def test_progressive_crashes_leave_one_region(self):
        faults = progressive_region_crashes(list(PAPER_REGIONS), 100.0, 50.0)
        assert len(faults) == 4
        crashed = {fault.regions[0] for fault in faults}
        assert PAPER_REGIONS[-1] not in crashed

    def test_partition_3_2_groups(self):
        faults = partition_3_2(list(PAPER_REGIONS), at=10.0, heal_at=20.0)
        assert faults[0].groups[0] == tuple(PAPER_REGIONS[:3])
        assert faults[1].action == "heal"

    def test_partition_needs_five_regions(self):
        with pytest.raises(ValueError):
            partition_3_2(list(PAPER_REGIONS[:3]), at=10.0)

    def test_resolution_maps_regions_to_names(self):
        faults = [RegionFault(1.0, "crash", (Region.US_WEST1,))]
        schedule = resolve_faults(
            faults,
            servers_by_region={Region.US_WEST1: ["site-x"]},
            clients_by_region={Region.US_WEST1: ["client-x"]},
            extra_by_region={Region.US_WEST1: ["am-x"]},
        )
        event = schedule.events[0]
        assert set(event.targets) == {"site-x", "client-x", "am-x"}

    def test_resolution_can_exclude_clients(self):
        faults = [RegionFault(1.0, "crash", (Region.US_WEST1,), include_clients=False)]
        schedule = resolve_faults(
            faults,
            servers_by_region={Region.US_WEST1: ["site-x"]},
            clients_by_region={Region.US_WEST1: ["client-x"]},
        )
        assert schedule.events[0].targets == ("site-x",)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            resolve_faults([RegionFault(1.0, "melt", ())], {}, {})

    def test_faulted_run_executes(self):
        faults = tuple(
            progressive_region_crashes(list(PAPER_REGIONS), first_at=5.0, every=5.0)
        )
        result = run_experiment(quick_config(faults=faults, duration=30.0))
        assert result.committed > 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "v"], [["a", 1], ["long-name", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-name" in lines[-1]

    def test_format_series(self):
        text = format_series([(0.0, 1.0), (1.0, 2.0)], title="S")
        assert "#" in text

    def test_format_series_empty(self):
        assert "(no data)" in format_series([], title="S")

    def test_ratio_guard(self):
        assert ratio(1.0, 0.0) == float("inf")
        assert ratio(4.0, 2.0) == 2.0

    def test_format_series_always_shows_last_point(self):
        # 10 points at max_points=4 -> stride 2 samples indices 0..8;
        # the final point (t=9) must still be appended.
        points = [(float(t), 1.0) for t in range(9)] + [(9.0, 42.0)]
        text = format_series(points, max_points=4)
        assert "42.0" in text
        assert text.splitlines()[-1].strip().startswith("9.0")

    def test_format_series_no_duplicate_last_point(self):
        points = [(0.0, 1.0), (1.0, 2.0)]
        text = format_series(points, max_points=40)
        assert text.count("2.0") == 1

    def test_write_bench_json(self, tmp_path):
        config = quick_config()
        path = write_bench_json(
            "demo", {"committed": 7}, config=config, seed=2, out_dir=tmp_path
        )
        assert path == tmp_path / "BENCH_demo.json"
        import json

        payload = json.loads(path.read_text())
        assert payload["bench"] == "demo"
        assert payload["headline"] == {"committed": 7}
        assert payload["seed"] == 2
        assert payload["config"]["duration"] == 20.0

    def test_write_bench_json_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_OUT_DIR", str(tmp_path / "artifacts"))
        path = write_bench_json("envdemo", {"x": 1})
        assert path.parent == tmp_path / "artifacts"
        assert path.exists()
