"""Tests for Avantan[*]: any-subset rounds, locking, recovery, safety."""

from repro.core.avantan.base import Role
from repro.core.avantan.star import AvantanStar
from repro.core.config import AvantanVariant
from repro.core.messages import (
    AbortRedistribution,
    AcceptValueMsg,
    DecisionMsg,
    ElectionGetValue,
    ElectionReject,
)
from repro.core.avantan.state import Ballot

from tests.helpers import MiniCluster, acquire_burst, uniform_ops


def exhausting_cluster(**kwargs):
    mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300, **kwargs)
    region = mini.cluster.sites[0].region
    mini.client_for(region, acquire_burst(start=1.0, count=150))
    return mini


class TestFailureFreeRound:
    def test_burst_served_via_redistribution(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        assert mini.metrics.committed == 150
        mini.check()

    def test_round_uses_a_subset_not_necessarily_everyone(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        applied = mini.site(0).protocol.state.applied_log
        assert applied, "hot site never applied a redistribution"
        participants = applied[-1].participants
        assert mini.site(0).name in participants
        assert 2 <= len(participants) <= 3

    def test_sites_idle_after_round(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        for site in mini.sites:
            assert site.protocol.role is Role.IDLE


class TestLocking:
    def test_locked_cohort_rejects_concurrent_election(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        a, b, c = mini.sites
        # b locks onto a's round...
        b.protocol._on_election_get_value(
            ElectionGetValue(Ballot(5, a.name), "VM"), a.name
        )
        assert b.protocol.active
        # ...and must reject c's higher-ballot election (change ii).
        rejected_before = mini.network.messages_sent
        b.protocol._on_election_get_value(
            ElectionGetValue(Ballot(9, c.name), "VM"), c.name
        )
        assert b.protocol._locked_to == a.name
        assert mini.network.messages_sent == rejected_before + 1  # the reject

    def test_stale_ballot_rejected_when_idle(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        a, b, _ = mini.sites
        b.protocol.state.ballot_num = Ballot(10, b.name)
        b.protocol._on_election_get_value(
            ElectionGetValue(Ballot(3, a.name), "VM"), a.name
        )
        assert not b.protocol.active

    def test_full_rejection_aborts_election_early(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        a, b, c = mini.sites
        a.protocol.trigger()
        ballot = a.protocol.state.ballot_num
        a.protocol._on_election_reject(ElectionReject(ballot, "VM"), b.name)
        a.protocol._on_election_reject(ElectionReject(ballot, "VM"), c.name)
        assert not a.protocol.active
        assert a.protocol.stats.aborted == 1


class TestDeadBallots:
    def test_late_accept_value_after_abort_is_nacked(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        a, b, _ = mini.sites
        ballot = Ballot(4, a.name)
        b.protocol.state.dead_ballots.add(ballot)
        from repro.core.avantan.state import AcceptValue
        from repro.core.entity import SiteTokenState

        value = AcceptValue(ballot, "VM", (SiteTokenState(b.name, "VM", 100, 0),))
        before = b.state.tokens_left
        b.protocol._on_accept_value(AcceptValueMsg(ballot, value, False), a.name)
        assert b.state.tokens_left == before
        assert not b.protocol.active

    def test_abort_from_participant_kills_leader_round(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        a, b, c = mini.sites
        region = a.region
        mini.client_for(region, acquire_burst(start=1.0, count=150))
        # Let the round start, then have a cohort nack it.
        def nack():
            if a.protocol.role is Role.LEADER:
                a.protocol._on_abort(
                    AbortRedistribution(a.protocol.state.ballot_num), b.name
                )
        mini.kernel.schedule(1.3, nack)
        mini.run(until=30.0)
        mini.check()


class TestFailureRecovery:
    def test_leader_crash_cohorts_resolve(self):
        mini = exhausting_cluster()
        mini.kernel.schedule(1.2, mini.site(0).crash)
        mini.run(until=40.0)
        mini.check()
        for site in mini.sites[1:]:
            assert site.protocol.role is Role.IDLE or site.protocol.degraded

    def test_leader_crash_then_recovery_reconverges(self):
        mini = exhausting_cluster()
        mini.kernel.schedule(1.2, mini.site(0).crash)
        mini.kernel.schedule(8.0, mini.site(0).recover)
        mini.run(until=60.0)
        mini.check()

    def test_conservation_under_loss(self):
        mini = exhausting_cluster(loss=0.05)
        mini.run(until=60.0)
        mini.check()

    def test_conservation_under_contention_and_churn(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=200, seed=11, loss=0.02)
        for index, site in enumerate(mini.sites):
            mini.client_for(
                site.region,
                uniform_ops(seed=index, count=500, rate=30, acquire_fraction=0.85),
            )
        mini.kernel.schedule(6.0, mini.site(2).crash)
        mini.kernel.schedule(11.0, mini.site(2).recover)
        mini.run(until=60.0)
        mini.check()

    def test_minority_partition_still_redistributes(self):
        """The headline Avantan[*] property: two sites cut off from the
        third can still redistribute between themselves."""
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        a, b, c = mini.sites
        mini.client_for(a.region, acquire_burst(start=2.0, count=150))
        # Cut c (and its app manager) off; a+b plus their clients/app
        # managers stay connected, a minority of the three sites.
        group_c = [c.name, f"am-{c.region.value}"]
        group_ab = [n for n in mini.network.endpoints() if n not in group_c]
        mini.network.partitions.partition([group_ab, group_c])
        mini.run(until=40.0)
        # a ran out at 100 and got tokens from b despite the partition.
        assert mini.site(0).counters["granted_acquires"] == 150
        totals = mini.cluster.redistribution_totals()
        assert totals["completed"] >= 1
        mini.check()


class TestDecisionIdempotence:
    def test_duplicate_decisions_do_not_double_apply(self):
        mini = exhausting_cluster()
        mini.run(until=30.0)
        site = mini.site(0)
        value = site.protocol.state.applied_log[-1]
        before = site.state.tokens_left
        site.protocol.handle(DecisionMsg(value.value_id, value), "replayer")
        site.protocol.handle(DecisionMsg(value.value_id, value), "replayer")
        assert site.state.tokens_left == before
        mini.check()
