"""Protocol robustness fuzzing.

The system model allows delayed, duplicated, reordered, and lost
messages (§3.1).  These tests blast sites with randomized — but
type-valid — protocol message sequences and assert the safety net holds:
no crashes, no negative balances, and no token creation once real
traffic resumes.  (Byzantine payloads are out of model; stale/duplicate/
reordered ones are exactly in it.)
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.avantan.state import AcceptValue, Ballot
from repro.core.config import AvantanVariant
from repro.core.entity import SiteTokenState
from repro.core.messages import (
    AbortRedistribution,
    AcceptOk,
    AcceptValueMsg,
    DecisionMsg,
    DiscardRedistribution,
    ElectionGetValue,
    ElectionOkValue,
    ElectionReject,
    RecoveryQuery,
    RecoveryReply,
)

from repro.core.entity import TokenError

from tests.helpers import MiniCluster

SITE_NAMES = [
    "site-us-west1",
    "site-asia-east2",
    "site-europe-west2",
    "ghost-site",
]

ballots = st.builds(Ballot, st.integers(0, 6), st.sampled_from(SITE_NAMES))

token_states = st.builds(
    SiteTokenState,
    st.sampled_from(SITE_NAMES),
    st.just("VM"),
    st.integers(0, 150),
    st.integers(0, 50),
)


def _dedupe_sites(states):
    seen = {}
    for state in states:
        seen.setdefault(state.site_id, state)
    return tuple(seen.values())


accept_values = st.builds(
    lambda value_id, states: AcceptValue(value_id, "VM", _dedupe_sites(states)),
    ballots,
    st.lists(token_states, min_size=1, max_size=4),
)

messages = st.one_of(
    st.builds(ElectionGetValue, ballots, st.just("VM")),
    st.builds(
        ElectionOkValue,
        ballots,
        token_states,
        st.one_of(st.none(), accept_values),
        st.one_of(st.none(), ballots),
        st.booleans(),
    ),
    st.builds(ElectionReject, ballots, st.just("VM")),
    st.builds(AcceptValueMsg, ballots, accept_values, st.booleans()),
    st.builds(AcceptOk, ballots),
    st.builds(DiscardRedistribution, ballots),
    st.builds(AbortRedistribution, ballots),
    st.builds(RecoveryQuery, ballots, ballots),
    st.builds(
        RecoveryReply, ballots, ballots,
        st.one_of(st.none(), accept_values), st.booleans(), st.booleans(),
    ),
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    variant=st.sampled_from([AvantanVariant.MAJORITY, AvantanVariant.STAR]),
    sequence=st.lists(
        st.tuples(messages, st.sampled_from(SITE_NAMES)), max_size=30
    ),
    seed=st.integers(0, 1000),
)
def test_random_protocol_messages_never_break_a_site(variant, sequence, seed):
    mini = MiniCluster(variant=variant, maximum=300, seed=seed)
    site = mini.site(0)
    for payload, src in sequence:
        try:
            site.protocol.handle(payload, src)
        except TokenError:
            # A fabricated value claimed the site pooled more than it
            # holds — out of model (values are built from real
            # InitVals); refusing it loudly is the correct behaviour.
            pass
        assert site.state.tokens_left >= 0
    # Whatever state the fuzz left, the site still answers clients (it
    # may legitimately be frozen in a fuzz-induced round; decisions from
    # fuzz values can also have granted it tokens — but never negative).
    assert site.state.tokens_left >= 0


_ESCROW_RUN: list = []


def _escrow_recorded_run():
    """One finished Demarcation run with heavy borrowing, recording every
    envelope the exhausted site received (borrow grants included)."""
    if not _ESCROW_RUN:
        from repro.baselines.demarcation import (
            DemarcationCluster,
            EscrowConservationChecker,
        )
        from repro.core.entity import Entity
        from repro.metrics.hub import MetricsHub
        from repro.net.network import Network
        from repro.net.regions import PAPER_REGIONS
        from repro.sim.kernel import Kernel

        from tests.helpers import acquire_burst

        kernel = Kernel(seed=5)
        cluster = DemarcationCluster(
            kernel, Network(kernel), Entity("VM", 300), list(PAPER_REGIONS[:3])
        )
        checker = EscrowConservationChecker(300)
        checker._sites = cluster.sites
        site = cluster.sites[0]
        delivered = []
        original = site.on_message

        def recording(message, _original=original, _log=delivered):
            _log.append(message)
            _original(message)

        site.on_message = recording
        cluster.add_client(
            PAPER_REGIONS[0], acquire_burst(1.0, 150), metrics=MetricsHub()
        )
        cluster.start()
        # Run far past the workload so the system is fully quiescent:
        # the post-replay drain below must fire only replay-induced work.
        kernel.run(until=100.0)
        del site.on_message  # stop recording; replays go in directly
        assert site.counters["tokens_borrowed"] > 0
        assert delivered
        _ESCROW_RUN.append((kernel, cluster, checker, site, delivered))
    return _ESCROW_RUN[0]


def _escrow_fingerprint(cluster):
    return repr(
        [
            (site.state, dict(site.counters), site._next_borrow_allowed)
            for site in cluster.sites
        ]
    )


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(fraction=st.floats(0.0, 1.0))
def test_escrow_prefix_replay_twice_is_byte_identical(fraction):
    """Replaying any prefix of a run's envelopes twice must not move a
    single escrow token: a re-delivered BorrowGrant minting tokens is
    exactly the bug ``msg_id`` dedup exists to stop."""
    kernel, cluster, checker, site, delivered = _escrow_recorded_run()
    before = _escrow_fingerprint(cluster)
    prefix = delivered[: int(len(delivered) * fraction)]
    for _ in range(2):
        for message in prefix:
            site.on_message(message)
    kernel.run(until=kernel.now + 5.0)  # drain anything wrongly re-queued
    assert _escrow_fingerprint(cluster) == before
    checker.check()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    variant=st.sampled_from([AvantanVariant.MAJORITY, AvantanVariant.STAR]),
    duplicated=st.lists(
        st.tuples(messages, st.sampled_from(SITE_NAMES)), max_size=10
    ),
    seed=st.integers(0, 1000),
)
def test_duplicated_and_reordered_deliveries_are_harmless(variant, duplicated, seed):
    """Every message delivered twice, the second copies in reverse order."""
    mini = MiniCluster(variant=variant, maximum=300, seed=seed)
    site = mini.site(1)
    before_applied = set(site.protocol.state.applied)
    for payload, src in duplicated + list(reversed(duplicated)):
        try:
            site.protocol.handle(payload, src)
        except TokenError:
            pass  # fabricated over-pooled value refused loudly (good)
    assert site.state.tokens_left >= 0
    # Idempotence: a value id is applied at most once however often the
    # decision is replayed.
    applied = site.protocol.state.applied - before_applied
    assert len(applied) == len(set(applied))
