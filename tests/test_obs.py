"""Tests for the telemetry layer: bus, sinks, schema, traced runs.

The determinism tests compare event *counts and type histograms* across
runs rather than raw streams: request/read ids come from process-global
counters, so a second run in the same process numbers its trace ids
differently while emitting the identical event sequence shape.
"""

from collections import Counter
from types import SimpleNamespace

import pytest

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.metrics.latency import percentile
from repro.obs import (
    SCHEMA,
    EventBus,
    JsonlSink,
    RingSink,
    format_trace_summary,
    read_trace,
    trace_id_of,
    validate_event,
    validate_events,
)
from repro.sim.kernel import Kernel
from repro.workload.trace import TraceConfig


def quick_config(**overrides):
    defaults = dict(
        duration=20.0,
        seed=2,
        trace=TraceConfig(days=2.0),
        start_interval=0,
        invariant_interval=5.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def traced_run(config):
    sink = RingSink()
    experiment = Experiment(config, trace_sink=sink)
    result = experiment.run()
    return result, sink.events()


class TestEventBus:
    def test_emit_stamps_clock_and_type(self):
        kernel = Kernel(seed=1)
        sink = RingSink()
        bus = EventBus(kernel, sink)
        kernel.schedule(2.5, lambda: bus.emit("epoch.close", node="s1", demand=3.0))
        kernel.run(until=5.0)
        (event,) = sink.events()
        assert event["ts"] == pytest.approx(2.5)
        assert event["type"] == "epoch.close"
        assert event["node"] == "s1"
        assert event["demand"] == 3.0

    def test_span_duration_against_clock(self):
        kernel = Kernel(seed=1)
        sink = RingSink()
        bus = EventBus(kernel, sink)
        span_holder = {}
        kernel.schedule(1.0, lambda: span_holder.setdefault(
            "id", bus.span_begin("request", node="c1", trace_id="req-1")))
        kernel.schedule(4.0, lambda: bus.span_end(span_holder["id"], outcome="granted"))
        kernel.run(until=5.0)
        begin, end = sink.events()
        assert begin["type"] == "span.begin"
        assert end["type"] == "span.end"
        assert end["dur"] == pytest.approx(3.0)
        assert end["outcome"] == "granted"
        assert end["trace_id"] == "req-1"
        assert bus.open_spans == 0

    def test_span_end_unknown_id_is_noop(self):
        bus = EventBus(Kernel(seed=1), sink := RingSink())
        bus.span_end(999)
        assert len(sink) == 0

    def test_open_spans_counts_unfinished(self):
        bus = EventBus(Kernel(seed=1), RingSink())
        bus.span_begin("avantan.round", node="s1")
        assert bus.open_spans == 1

    def test_span_ids_deterministic(self):
        bus = EventBus(Kernel(seed=1), RingSink())
        assert bus.span_begin("a") == 1
        assert bus.span_begin("b") == 2

    def test_ring_sink_bounded(self):
        sink = RingSink(capacity=3)
        for i in range(5):
            sink.write({"i": i})
        assert [event["i"] for event in sink.events()] == [2, 3, 4]


class TestTraceIdOf:
    def test_request_payload(self):
        payload = SimpleNamespace(request=SimpleNamespace(request_id=4))
        assert trace_id_of(payload) == "req-4"

    def test_response_payload(self):
        payload = SimpleNamespace(response=SimpleNamespace(request_id=9))
        assert trace_id_of(payload) == "req-9"

    def test_read_payload(self):
        assert trace_id_of(SimpleNamespace(read_id=7)) == "read-7"

    def test_avantan_ballot(self):
        ballot = SimpleNamespace(num=2, site_id="us-east")
        assert trace_id_of(SimpleNamespace(ballot=ballot)) == "rnd-2.us-east"

    def test_paxos_tuple_ballot(self):
        assert trace_id_of(SimpleNamespace(ballot=(3, "n1"))) == "rnd-3.n1"

    def test_raft_term(self):
        assert trace_id_of(SimpleNamespace(term=5)) == "term-5"

    def test_no_identity(self):
        assert trace_id_of(object()) is None


class TestSchema:
    def test_valid_event(self):
        event = {"ts": 1.0, "type": "msg.send", "node": "",
                 "src": "a", "dst": "b", "msg_type": "Ping", "msg_id": 1}
        assert validate_event(event) == []

    def test_missing_required_field(self):
        event = {"ts": 1.0, "type": "msg.drop", "node": "",
                 "src": "a", "dst": "b", "msg_type": "Ping", "msg_id": 1}
        assert any("reason" in error for error in validate_event(event))

    def test_unknown_type(self):
        errors = validate_event({"ts": 0.0, "type": "nope", "node": ""})
        assert any("unknown event type" in error for error in errors)

    def test_non_scalar_extra_rejected(self):
        event = {"ts": 1.0, "type": "request.shed", "node": "c1",
                 "kind": "acquire", "payload": {"nested": True}}
        assert any("not a JSON scalar" in error for error in validate_event(event))

    def test_not_a_dict(self):
        assert validate_event([1, 2]) != []

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        bus = EventBus(Kernel(seed=1), sink)
        bus.emit("request.shed", node="c1", kind="acquire", amount=2)
        span = bus.span_begin("request", node="c1", trace_id="req-1")
        bus.span_end(span, outcome="granted")
        bus.close()
        events = read_trace(path)
        assert len(events) == 3
        assert validate_events(events) == []
        assert events[2]["outcome"] == "granted"

    def test_read_trace_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0}\nnot json\n')
        with pytest.raises(ValueError, match="malformed"):
            read_trace(path)


class TestTracedExperiment:
    def test_trace_opens_with_meta_and_closes_with_end(self):
        result, events = traced_run(quick_config())
        assert events[0]["type"] == "run.meta"
        assert events[0]["schema"] == SCHEMA
        assert events[0]["substrate"] == "sim"
        assert events[0]["seed"] == 2
        assert events[-1]["type"] == "run.end"
        assert events[-1]["committed"] == result.committed

    def test_every_event_validates(self):
        _, events = traced_run(quick_config())
        assert validate_events(events) == []

    def test_request_spans_match_outcomes(self):
        result, events = traced_run(quick_config())
        outcomes = Counter(
            event["outcome"] for event in events
            if event["type"] == "span.end" and event["span"] == "request"
        )
        assert outcomes["granted"] == result.committed
        assert outcomes["rejected"] == result.rejected

    def test_message_events_match_network_counters(self):
        sink = RingSink()
        experiment = Experiment(quick_config(), trace_sink=sink)
        experiment.run()
        events = sink.events()
        sent = Counter(e["msg_type"] for e in events if e["type"] == "msg.send")
        delivered = Counter(e["msg_type"] for e in events if e["type"] == "msg.deliver")
        assert sent == experiment.network.sent_by_type
        assert delivered == experiment.network.delivered_by_type

    def test_avantan_round_spans_present(self):
        _, events = traced_run(quick_config(duration=40.0))
        spans = {e["span"] for e in events if e["type"] == "span.begin"}
        assert "avantan.round" in spans
        assert any(span.startswith("avantan.phase.") for span in spans)

    def test_same_seed_runs_emit_identical_shapes(self):
        _, first = traced_run(quick_config())
        _, second = traced_run(quick_config())
        assert len(first) == len(second)
        assert Counter(e["type"] for e in first) == Counter(e["type"] for e in second)
        # Ordering too: the type sequence is the run's causal skeleton.
        assert [e["type"] for e in first] == [e["type"] for e in second]

    def test_tracing_does_not_change_results(self):
        baseline = Experiment(quick_config()).run()
        traced, _ = traced_run(quick_config())
        assert traced.committed == baseline.committed
        assert traced.rejected == baseline.rejected
        assert traced.tokens_left_total == baseline.tokens_left_total
        assert traced.latency == baseline.latency

    def test_disabled_tracing_allocates_no_bus(self):
        experiment = Experiment(quick_config())
        assert experiment.obs is None
        assert experiment.kernel.obs is None
        assert experiment.network.obs is None

    def test_baseline_consensus_commits_traced(self):
        _, events = traced_run(quick_config(system="multipaxsys", duration=30.0))
        commits = [e for e in events if e["type"] == "consensus.commit"]
        assert commits
        assert all(isinstance(e["index"], int) for e in commits)

    def test_summary_renders_tables(self):
        _, events = traced_run(quick_config())
        text = format_trace_summary(events, source="ring")
        assert "per-phase latency" in text
        assert "messages by payload type" in text
        assert "request outcomes" in text

    def test_trace_path_writes_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        Experiment(quick_config(trace_path=str(path))).run()
        events = read_trace(path)
        assert events[0]["type"] == "run.meta"
        assert validate_events(events) == []

    def test_span_latency_summary_consistent(self):
        """Request-span durations reproduce the metrics hub's percentiles."""
        result, events = traced_run(quick_config())
        durations = [
            e["dur"] for e in events
            if e["type"] == "span.end" and e["span"] == "request"
            and e["outcome"] == "granted"
        ]
        assert durations
        # Same population modulo the hub's warmup window, so the medians
        # agree to within a millisecond.
        assert percentile(durations, 50) == pytest.approx(
            result.latency.p50, abs=1e-3
        )
