"""Scale subsystem under faults: dead-site routing, unknown entities,
and batch envelopes crossing a faulty transport.

The stacking order under test is the deployment order
``BatchingTransport(FaultyTransport(Network))`` — faults hit *whole*
envelopes, so a dropped/duplicated/delayed batch must degrade to
dropping/duplicating/delaying its members without ever breaking
per-entity conservation.
"""

from repro.faults.transport import FaultyTransport
from repro.scale.harness import (
    ScaleConfig,
    audit_conservation,
    build_scale_deployment,
    run_scale,
)


def small_config(**overrides) -> ScaleConfig:
    defaults = dict(
        entities=50,
        regions=3,
        maximum=30,
        duration=10.0,
        rate=300.0,
        seed=5,
        hot_entities=16,
        placement="first",  # all tokens at region 0: rounds guaranteed
    )
    defaults.update(overrides)
    return ScaleConfig(**defaults)


class TestDeadSiteRouting:
    def test_drivers_fail_over_around_a_crashed_host(self):
        config = small_config(duration=5.0, rate=200.0, placement="spread")
        deployment = build_scale_deployment(config)
        dead = deployment.hosts[2]
        dead.crash()
        result = run_scale(config, deployment=deployment)
        # Every request found a live host: the directory record lists
        # all replicas and _route skips crashed ones.
        assert result.failed == 0
        assert result.submitted > 0
        assert result.committed > 0
        assert result.drained
        # The dead host's tokens sit untouched in its (stable) table, so
        # conservation holds cluster-wide.
        assert result.violations == []
        assert dead.table.total("tokens_left") == sum(
            dead.table.tokens_left
        )

    def test_all_hosts_crashed_fails_requests(self):
        config = small_config(duration=2.0, rate=100.0, placement="spread")
        deployment = build_scale_deployment(config)
        for host in deployment.hosts:
            host.crash()
        result = run_scale(config, deployment=deployment)
        assert result.committed == 0
        assert result.failed > 0


class TestUnknownEntities:
    def test_submit_unknown_entity(self):
        deployment = build_scale_deployment(small_config(duration=1.0))
        host = deployment.hosts[0]
        assert host.submit("ghost", acquire=True, amount=1) == "unknown"
        assert host.stats()["unknown_entity"] == 1

    def test_unregistered_entity_fails_at_the_driver(self):
        config = small_config(duration=2.0, rate=100.0, hot_entities=8)
        deployment = build_scale_deployment(config)
        # Tear half the entities out of the directory: lookups miss and
        # the driver counts a routing failure instead of crashing.
        for index in range(0, config.entities, 2):
            deployment.directory.unregister(f"e{index}")
        result = run_scale(config, deployment=deployment)
        assert result.failed > 0
        assert result.violations == []


class TestBatchesUnderFaults:
    def _run_with_faults(self, *, drop=0.0, duplicate=0.0, delay=0.0,
                         jitter=0.0, seed=5, heal_at=6.0):
        """A batched run with link faults on every host, healed before
        the end of load so the strict audit applies after the drain."""
        faulty: list[FaultyTransport] = []

        def wrap(inner):
            layer = FaultyTransport(inner, inner.kernel, seed=11)
            faulty.append(layer)
            return layer

        config = small_config(seed=seed)
        deployment = build_scale_deployment(config, transport_wrap=wrap)
        layer = faulty[0]
        names = [host.name for host in deployment.hosts]
        layer.degrade(names, drop=drop, duplicate=duplicate,
                      delay=delay, jitter=jitter)
        deployment.kernel.schedule(heal_at, layer.restore)
        result = run_scale(config, deployment=deployment)
        return result, layer, deployment

    def test_dropped_envelopes_do_not_break_conservation(self):
        result, layer, _ = self._run_with_faults(drop=0.15)
        assert layer.injected["nemesis-drop"] > 0
        assert result.drained
        assert result.violations == []
        assert result.committed > 0

    def test_duplicated_envelopes_are_absorbed_by_dedup(self):
        result, layer, deployment = self._run_with_faults(duplicate=0.5)
        assert layer.injected["duplicate"] > 0
        # Whole envelopes were re-delivered; the receivers reconstructed
        # the inner messages with their buffering-time msg_ids, so the
        # envelope dedup absorbed every replay.
        assert result.drained
        assert result.violations == []
        assert deployment.batching is not None
        assert deployment.batching.batches_sent > 0

    def test_delayed_and_reordered_envelopes_converge(self):
        result, layer, _ = self._run_with_faults(delay=0.05, jitter=0.2)
        assert layer.injected["delay"] > 0
        assert result.drained
        assert result.violations == []

    def test_combined_fault_storm(self):
        result, layer, _ = self._run_with_faults(
            drop=0.1, duplicate=0.25, delay=0.02, jitter=0.1
        )
        assert layer.injected["nemesis-drop"] > 0
        assert layer.injected["duplicate"] > 0
        assert result.drained
        assert result.violations == []
        assert result.committed > 0


class TestCrashRecovery:
    def test_crash_and_recover_mid_run_conserves(self):
        config = small_config(duration=8.0, rate=300.0)
        deployment = build_scale_deployment(config)
        victim = deployment.hosts[1]
        deployment.kernel.schedule(2.0, victim.crash)
        deployment.kernel.schedule(4.0, victim.recover)
        result = run_scale(config, deployment=deployment)
        assert result.drained
        assert result.violations == []
        assert result.committed > 0

    def test_crash_rejects_parked_queue(self):
        config = small_config(duration=4.0, rate=300.0)
        deployment = build_scale_deployment(config)
        victim = deployment.hosts[1]
        deployment.kernel.run(until=2.0)
        queued_before = victim.queued_requests()
        victim.crash()
        assert victim.queued_requests() == 0
        # Whatever was parked behind a round is now accounted as
        # rejected, not silently lost.
        if queued_before:
            assert victim.table.total("rejected") >= queued_before

    def test_audit_masks_in_flight_rounds_when_not_strict(self):
        config = small_config(duration=3.0, rate=400.0, audit=False)
        deployment = build_scale_deployment(config)
        # Stop mid-flight: some entities legitimately have rounds open.
        deployment.kernel.run(until=1.5)
        violations, audited = audit_conservation(deployment, strict=False)
        assert violations == []
        assert audited <= config.entities
