"""Tests for the Jepsen-lite nemesis harness and its CLI entry point.

Seed 0 at duration 70/quiet 15 samples a schedule with two crash
windows plus two degrade windows (asserted below) — the interesting mix
for the recovery path: a crashed site must come back with durable state
*and* absorb message-level adversity.
"""

import pytest

from repro.cli import main
from repro.faults import Nemesis, NemesisConfig
from repro.harness.nemesis import GRACE, NEMESIS_SYSTEMS, run_nemesis
from repro.net.regions import PAPER_REGIONS

SEED = 0
DURATION = 70.0
QUIET = 15.0


@pytest.fixture(scope="module")
def clean_report():
    return run_nemesis(SEED, duration=DURATION, quiet_period=QUIET)


class TestSchedule:
    def test_seed_zero_includes_crash_and_degrade_windows(self):
        schedule = Nemesis(
            SEED,
            tuple(PAPER_REGIONS),
            NemesisConfig(duration=DURATION, quiet_period=QUIET),
        ).schedule()
        actions = {fault.action for fault in schedule}
        assert "crash" in actions
        assert "degrade" in actions

    def test_grace_exceeds_client_request_timeout(self):
        # WorkloadClient.request_timeout defaults to 10 s; the grace
        # window must outlast it or end-of-run in-flight requests could
        # never be written off and liveness would be unprovable.
        assert GRACE > 10.0


class TestCleanRun:
    def test_every_system_is_safe_and_live(self, clean_report):
        assert set(clean_report.verdicts) == set(NEMESIS_SYSTEMS)
        for system, verdict in clean_report.verdicts.items():
            assert verdict.result.audit_violations == [], system
            assert verdict.result.unanswered == 0, system
            assert verdict.post_heal_committed > 0, system
            # No site may still hold a frozen (pledged) balance once the
            # run has quiesced — an unresolved pledge is a safety FAIL.
            assert verdict.unresolved_pledges == 0, system
            assert verdict.passed, system
        assert clean_report.passed
        assert clean_report.violations() == []

    def test_schedule_recorded_with_final_heal(self, clean_report):
        assert clean_report.final_heal == max(
            fault.time for fault in clean_report.schedule
        )
        assert clean_report.final_heal <= DURATION - QUIET


class TestBrokenRecovery:
    """The acceptance regression: recovery without the WAL must be
    *caught by the auditor* as a conservation violation — proving the
    harness detects a broken recovery path rather than silently passing."""

    def test_wal_disabled_is_flagged_as_conservation_violation(self):
        report = run_nemesis(
            SEED,
            systems=("samya-majority", "demarcation"),
            duration=DURATION,
            quiet_period=QUIET,
            wal_enabled=False,
        )
        assert not report.passed
        for system, verdict in report.verdicts.items():
            assert verdict.result.audit_violations, system
            assert any(
                "conservation" in violation
                for violation in verdict.result.audit_violations
            ), system
        assert all(
            line.startswith(("samya-majority:", "demarcation:"))
            for line in report.violations()
        )


class TestTraces:
    def test_trace_dir_writes_one_trace_per_system(self, tmp_path):
        report = run_nemesis(
            SEED,
            systems=("samya-majority",),
            duration=DURATION,
            quiet_period=QUIET,
            trace_dir=tmp_path,
        )
        assert report.verdicts["samya-majority"].passed
        path = tmp_path / f"nemesis-samya-majority-seed{SEED}.jsonl"
        assert path.exists()
        from repro.obs.schema import read_trace, validate_events

        events = read_trace(path)
        assert events[0]["type"] == "run.meta"
        assert validate_events(events) == []


class TestCli:
    ARGS = [
        "nemesis", "--seed", str(SEED), "--duration", str(DURATION),
        "--quiet", str(QUIET), "--audit",
    ]

    def test_clean_run_exits_zero(self, capsys):
        assert main(self.ARGS + ["--systems", "samya-majority"]) == 0
        out = capsys.readouterr().out
        assert "nemesis schedule" in out
        assert "pass" in out

    def test_disable_wal_exits_nonzero(self, capsys):
        assert main(self.ARGS + ["--systems", "samya-majority", "--disable-wal"]) == 1
        err = capsys.readouterr().err
        assert "AUDIT" in err

    def test_unknown_system_exits_two(self, capsys):
        assert main(self.ARGS + ["--systems", "nope"]) == 2
