"""Core-protocol pledge discipline under faults.

A cohort that answers a foreign election has *pledged* its snapshot: the
leader may pool those tokens into a value that decides without the
cohort ever hearing about it.  These tests pin the port of the scale
subsystem's pledge discipline into ``repro.core.site``: the pledged
balance is frozen out of serving, the pledge settles exactly when the
outcome becomes knowable, survives a crash through the recovery WAL,
and conservation holds under message drops and one-way partitions.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.avantan.state import Ballot
from repro.core.config import AvantanVariant
from repro.core.entity import Entity
from repro.core.requests import RequestKind
from repro.faults.transport import FaultyTransport
from repro.net.network import Network, NetworkConfig
from repro.net.regions import PAPER_REGIONS
from repro.sim.kernel import Kernel

from tests.helpers import MiniCluster, acquire_burst, fast_config


class FaultyMini(MiniCluster):
    """A MiniCluster whose network is wrapped in a FaultyTransport."""

    def __init__(self, variant=AvantanVariant.MAJORITY, maximum: int = 300,
                 seed: int = 1, fault_seed: int = 11) -> None:
        # Rebuild the stack by hand: the faulty layer must wrap the sim
        # network *before* the cluster registers its actors on it.
        from repro.core.cluster import SamyaCluster
        from repro.metrics.hub import MetricsHub
        from repro.metrics.invariants import ConservationChecker

        self.kernel = Kernel(seed=seed)
        self.faulty = FaultyTransport(
            Network(self.kernel, NetworkConfig()), self.kernel, seed=fault_seed
        )
        self.network = self.faulty
        self.entity = Entity("VM", maximum)
        self.config = fast_config(variant)
        self.cluster = SamyaCluster(
            kernel=self.kernel,
            network=self.faulty,
            entity=self.entity,
            regions=tuple(PAPER_REGIONS[:3]),
            config=self.config,
        )
        self.metrics = MetricsHub()
        self.checker = ConservationChecker(maximum)
        self.checker.watch(self.cluster.sites)


def exhaustion_workload(mini, region_index: int = 0, count: int = 140):
    """Acquire well past one region's share: forces reactive rounds, so
    every other site answers foreign elections (and pledges)."""
    region = mini.sites[region_index].region
    return mini.client_for(region, acquire_burst(1.0, count))


def pledge_totals(mini):
    opened = sum(site.counters["pledges_opened"] for site in mini.sites)
    settled = sum(site.counters["pledge_settlements"] for site in mini.sites)
    return opened, settled


class TestCleanRunSettlement:
    def test_foreign_elections_pledge_and_decisions_settle(self):
        mini = MiniCluster(maximum=300)
        exhaustion_workload(mini)
        mini.run(until=30.0)
        opened, settled = pledge_totals(mini)
        assert opened > 0  # cohorts actually pledged
        assert settled == opened  # every outcome arrived
        assert all(site.unresolved_pledge is None for site in mini.sites)
        assert all(site.pledged_tokens == 0 for site in mini.sites)
        mini.check()

    def test_star_variant_settles_via_dead_ballots_too(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        exhaustion_workload(mini)
        mini.run(until=30.0)
        opened, settled = pledge_totals(mini)
        assert opened > 0
        assert settled == opened
        assert all(site.unresolved_pledge is None for site in mini.sites)
        mini.check()


class TestPledgeUnderDrops:
    def test_dropped_protocol_messages_conserve_and_settle(self):
        mini = FaultyMini(seed=3)
        names = [site.name for site in mini.sites]
        mini.faulty.degrade(names, drop=0.25)
        mini.kernel.schedule(10.0, mini.faulty.restore)
        exhaustion_workload(mini)
        mini.run(until=60.0)
        assert mini.faulty.injected["nemesis-drop"] > 0
        opened, settled = pledge_totals(mini)
        assert opened > 0
        # Quiesced well past the heal: no site still holds a frozen
        # balance (the idle-path re-election resolved every pledge).
        assert settled == opened
        assert all(site.unresolved_pledge is None for site in mini.sites)
        mini.check()

    def test_duplicated_protocol_messages_are_harmless(self):
        mini = FaultyMini(seed=5)
        names = [site.name for site in mini.sites]
        mini.faulty.degrade(names, duplicate=0.4)
        mini.kernel.schedule(10.0, mini.faulty.restore)
        exhaustion_workload(mini)
        mini.run(until=60.0)
        assert mini.faulty.injected["duplicate"] > 0
        opened, settled = pledge_totals(mini)
        assert settled == opened
        mini.check()


class TestPledgeUnderOneWayPartition:
    def test_oneway_isolated_cohort_recovers_its_pledge(self):
        mini = FaultyMini(seed=7)
        target = mini.sites[1]
        rest = [site.name for site in mini.sites if site is not target]
        # Replies from the cohort flow out, but nothing (Accepts,
        # Decisions) flows back in — the pledge cannot settle until heal.
        mini.kernel.schedule(
            2.0, mini.faulty.isolate_oneway, rest, [target.name]
        )
        mini.kernel.schedule(12.0, mini.faulty.heal_oneway)
        exhaustion_workload(mini)
        mini.run(until=60.0)
        opened, settled = pledge_totals(mini)
        assert settled == opened
        assert all(site.unresolved_pledge is None for site in mini.sites)
        mini.check()


class TestCrashDuringPledge:
    def _open_pledge(self, mini, site):
        """Deterministically put ``site`` in the pledged state: answer a
        foreign election the way ``snapshot_init_val`` does in vivo."""
        foreign = Ballot(5, mini.site(0).name)
        site.protocol.state.ballot_num = foreign
        site.snapshot_init_val()
        assert site.unresolved_pledge == foreign
        return foreign

    def test_pledged_balance_is_reserved_while_idle(self):
        mini = MiniCluster(maximum=300)
        site = mini.site(1)
        self._open_pledge(mini, site)
        # Protocol inactive (we faked the promise), yet the full pledged
        # balance is reserved — the crash/recovery window must not serve.
        assert site.pledged_tokens == site.state.tokens_left
        assert site._reserved_tokens() == site.pledged_tokens
        assert site._available_tokens() == 0

    def test_wal_replay_restores_pledge_and_reelects(self):
        mini = MiniCluster(maximum=300)
        mini.run(until=0.5)  # start the cluster before the fault
        site = mini.site(1)
        foreign = self._open_pledge(mini, site)
        site.crash()
        site.recover()
        # The replayed pledge is intact and recovery re-elected at once.
        assert site.unresolved_pledge == foreign
        assert site.counters["pledge_recoveries"] >= 1
        mini.run_more(until=20.0)
        # The recovery election pooled the site into a fresh decided
        # value (or surfaced the pledged outcome): settled either way.
        assert site.unresolved_pledge is None
        assert site.counters["pledge_settlements"] >= 1
        mini.check()

    def test_disabled_wal_loses_the_pledge(self):
        """The deliberately-broken-recovery knob: with WAL appends
        discarded, a crash forgets the pledge — exactly what the nemesis
        ``--disable-wal`` mode exists to let the auditor catch."""
        mini = MiniCluster(maximum=300)
        mini.run(until=0.5)
        site = mini.site(1)
        site.wal.enabled = False
        self._open_pledge(mini, site)
        site.crash()
        site.recover()
        assert site.unresolved_pledge is None  # forgotten: unsafe state
        assert site.pledged_tokens == 0


@settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    spend=st.integers(0, 120),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(1, 60)), max_size=16
    ),
    seed=st.integers(0, 200),
)
def test_pledged_balance_is_never_served(spend, ops, seed):
    """Property: while a pledge is unresolved, the site's balance never
    dips below the pledged amount — no sequence of acquires and releases
    can spend tokens the pledged round may have granted away."""
    from tests.test_site_degraded import forwarded

    mini = MiniCluster(maximum=300, seed=seed)
    site = mini.site(1)
    # Vary the pledged amount: serve some tokens away first.
    grant = max(0, site.state.tokens_left - spend)
    site.state.tokens_left = grant
    foreign = Ballot(3, mini.site(0).name)
    site.protocol.state.ballot_num = foreign
    site.snapshot_init_val()
    pledged = site.pledged_tokens
    assert pledged == grant
    for acquire, amount in ops:
        kind = RequestKind.ACQUIRE if acquire else RequestKind.RELEASE
        site._handle_client(forwarded(site, kind, amount))
        assert site.unresolved_pledge == foreign
        assert site.state.tokens_left >= pledged
        # The reserve may exceed the pledge floor (an acquire can
        # reactively start a round whose InitVal freezes the inflow
        # too) but never dips below it.
        assert site._available_tokens() <= site.state.tokens_left - pledged
