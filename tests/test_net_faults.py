"""Tests for scheduled fault injection."""

import pytest

from repro.net.faults import CrashController, FaultEvent, FaultSchedule
from repro.net.network import Network
from repro.net.regions import Region
from repro.sim.kernel import Kernel
from repro.sim.process import Actor


def build():
    kernel = Kernel()
    network = Network(kernel)
    controller = CrashController(kernel, network)
    actors = []
    for name in ("x", "y", "z"):
        actor = Actor(kernel, name)
        network.attach(actor, Region.US_WEST1)
        controller.register(actor)
        actors.append(actor)
    return kernel, network, controller, actors


class TestFaultSchedule:
    def test_builder_methods_append_events(self):
        schedule = (
            FaultSchedule()
            .crash(1.0, "x")
            .recover(2.0, "x")
            .partition(3.0, ("x",), ("y", "z"))
            .heal(4.0)
        )
        assert [event.action for event in schedule.events] == [
            "crash",
            "recover",
            "partition",
            "heal",
        ]

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "explode")


class TestCrashController:
    def test_crash_and_recover_apply_at_times(self):
        kernel, network, controller, (x, y, z) = build()
        controller.install(FaultSchedule().crash(1.0, "x").recover(2.0, "x"))
        kernel.run(until=1.5)
        assert x.crashed
        assert not y.crashed
        kernel.run(until=2.5)
        assert not x.crashed

    def test_partition_and_heal(self):
        kernel, network, controller, actors = build()
        controller.install(
            FaultSchedule().partition(1.0, ("x",), ("y", "z")).heal(2.0)
        )
        kernel.run(until=1.5)
        assert not network.partitions.can_communicate("x", "y")
        assert network.partitions.can_communicate("y", "z")
        kernel.run(until=2.5)
        assert network.partitions.can_communicate("x", "y")

    def test_unknown_target_is_ignored(self):
        kernel, network, controller, actors = build()
        controller.install(FaultSchedule().crash(1.0, "ghost"))
        kernel.run()
        assert controller.applied[0].targets == ("ghost",)

    def test_multiple_targets_in_one_event(self):
        kernel, network, controller, (x, y, z) = build()
        controller.install(FaultSchedule().crash(1.0, "x", "y"))
        kernel.run()
        assert x.crashed and y.crashed and not z.crashed
