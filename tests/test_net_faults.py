"""Tests for scheduled fault injection."""

import pytest

from repro.net.faults import CrashController, FaultEvent, FaultSchedule
from repro.net.network import Network
from repro.net.regions import Region
from repro.sim.kernel import Kernel
from repro.sim.process import Actor


def build():
    kernel = Kernel()
    network = Network(kernel)
    controller = CrashController(kernel, network)
    actors = []
    for name in ("x", "y", "z"):
        actor = Actor(kernel, name)
        network.attach(actor, Region.US_WEST1)
        controller.register(actor)
        actors.append(actor)
    return kernel, network, controller, actors


class TestFaultSchedule:
    def test_builder_methods_append_events(self):
        schedule = (
            FaultSchedule()
            .crash(1.0, "x")
            .recover(2.0, "x")
            .partition(3.0, ("x",), ("y", "z"))
            .heal(4.0)
        )
        assert [event.action for event in schedule.events] == [
            "crash",
            "recover",
            "partition",
            "heal",
        ]

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "explode")

    def test_degradation_builders_append_events(self):
        schedule = (
            FaultSchedule()
            .degrade(1.0, "x", drop=0.2, duplicate=0.1, delay=0.05, jitter=0.02)
            .restore(2.0, "x")
            .partition_oneway(3.0, ("x",), ("y", "z"))
        )
        assert [event.action for event in schedule.events] == [
            "degrade",
            "restore",
            "partition-oneway",
        ]
        assert schedule.events[0].drop == 0.2
        assert schedule.events[2].groups == (("x",), ("y", "z"))


class TestFaultEventValidation:
    @pytest.mark.parametrize("action", ["crash", "recover", "degrade", "restore"])
    def test_targeted_action_with_no_targets_rejected(self, action):
        with pytest.raises(ValueError, match="names no targets"):
            FaultEvent(1.0, action)

    def test_partition_with_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="appears in two groups"):
            FaultEvent(1.0, "partition", groups=(("x", "y"), ("y", "z")))

    def test_oneway_with_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="appears in two groups"):
            FaultEvent(1.0, "partition-oneway", groups=(("x",), ("x", "y")))

    def test_oneway_needs_exactly_two_nonempty_groups(self):
        with pytest.raises(ValueError, match="two non-empty groups"):
            FaultEvent(1.0, "partition-oneway", groups=(("x",),))
        with pytest.raises(ValueError, match="two non-empty groups"):
            FaultEvent(1.0, "partition-oneway", groups=(("x",), ()))

    def test_validation_error_carries_event_repr(self):
        with pytest.raises(ValueError, match="FaultEvent"):
            FaultEvent(1.0, "crash")

    def test_drop_and_duplicate_must_be_probabilities(self):
        with pytest.raises(ValueError, match="probabilities"):
            FaultEvent(1.0, "degrade", ("x",), drop=1.5)
        with pytest.raises(ValueError, match="probabilities"):
            FaultEvent(1.0, "degrade", ("x",), duplicate=-0.1)

    def test_delay_and_jitter_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultEvent(1.0, "degrade", ("x",), delay=-1.0)


class TestCrashController:
    def test_crash_and_recover_apply_at_times(self):
        kernel, network, controller, (x, y, z) = build()
        controller.install(FaultSchedule().crash(1.0, "x").recover(2.0, "x"))
        kernel.run(until=1.5)
        assert x.crashed
        assert not y.crashed
        kernel.run(until=2.5)
        assert not x.crashed

    def test_partition_and_heal(self):
        kernel, network, controller, actors = build()
        controller.install(
            FaultSchedule().partition(1.0, ("x",), ("y", "z")).heal(2.0)
        )
        kernel.run(until=1.5)
        assert not network.partitions.can_communicate("x", "y")
        assert network.partitions.can_communicate("y", "z")
        kernel.run(until=2.5)
        assert network.partitions.can_communicate("x", "y")

    def test_unknown_target_is_ignored(self):
        kernel, network, controller, actors = build()
        controller.install(FaultSchedule().crash(1.0, "ghost"))
        kernel.run()
        assert controller.applied[0].targets == ("ghost",)

    def test_multiple_targets_in_one_event(self):
        kernel, network, controller, (x, y, z) = build()
        controller.install(FaultSchedule().crash(1.0, "x", "y"))
        kernel.run()
        assert x.crashed and y.crashed and not z.crashed

    def test_degrade_on_bare_network_raises(self):
        kernel, network, controller, actors = build()
        controller.install(FaultSchedule().degrade(1.0, "x", drop=0.5))
        with pytest.raises(TypeError, match="FaultyTransport"):
            kernel.run()

    def test_oneway_on_bare_network_raises(self):
        kernel, network, controller, actors = build()
        controller.install(FaultSchedule().partition_oneway(1.0, ("x",), ("y",)))
        with pytest.raises(TypeError, match="FaultyTransport"):
            kernel.run()
