"""Tests for Algorithm 2 and the alternative reallocation strategies.

Conservation — sum(granted) == sum(pooled) — is THE invariant: it is what
makes the global constraint (Eq. 1) hold by construction, so it gets
property-based coverage across all strategies.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entity import SiteTokenState
from repro.core.reallocation import (
    EqualSplitReallocator,
    GreedyMaxUsageReallocator,
    ProportionalReallocator,
    ReallocationError,
    redistribute_tokens,
)


def states(*triples):
    return [
        SiteTokenState(f"s{i}", "VM", left, wanted)
        for i, (left, wanted) in enumerate(triples)
    ]


class TestGreedyMaxUsage:
    def test_all_wants_satisfied_when_supply_suffices(self):
        pool = states((100, 30), (50, 10), (200, 0))
        granted = redistribute_tokens(pool)
        # Wants granted in full, leftover (310-40=310... spare=350, wants=40,
        # leftover 310) split equally with remainder to smallest ids.
        assert granted["s0"] >= 30
        assert granted["s1"] >= 10
        assert sum(granted.values()) == 350

    def test_exact_fit(self):
        pool = states((10, 15), (20, 15))
        granted = redistribute_tokens(pool)
        assert granted == {"s0": 15, "s1": 15}

    def test_smallest_wants_rejected_first_when_short(self):
        # spare = 100; wants = 10 + 20 + 90 = 120 > 100: reject 10, then
        # outstanding 110 > 100, reject 20 -> outstanding 90 <= 100.
        pool = states((50, 10), (30, 20), (20, 90))
        granted = redistribute_tokens(pool)
        leftover = 100 - 90
        share, remainder = divmod(leftover, 3)
        assert granted["s2"] >= 90
        assert granted["s0"] <= share + 1
        assert granted["s1"] <= share + 1

    def test_everything_rejected_when_nothing_fits(self):
        pool = states((1, 50), (1, 60))
        granted = redistribute_tokens(pool)
        # Both wants exceed the pool of 2 after rejections; equal split.
        assert sum(granted.values()) == 2

    def test_no_wants_means_equal_rebalance(self):
        pool = states((90, 0), (0, 0), (9, 0))
        granted = redistribute_tokens(pool)
        assert sum(granted.values()) == 99
        assert granted == {"s0": 33, "s1": 33, "s2": 33}

    def test_remainder_goes_to_smallest_site_ids(self):
        pool = states((10, 0), (0, 0), (0, 0))
        granted = redistribute_tokens(pool)
        assert granted == {"s0": 4, "s1": 3, "s2": 3}

    def test_single_site(self):
        pool = states((42, 7))
        granted = redistribute_tokens(pool)
        assert granted == {"s0": 42}

    def test_deterministic_across_orderings(self):
        pool = states((50, 10), (30, 20), (20, 90))
        forward = GreedyMaxUsageReallocator().allocate(pool)
        backward = GreedyMaxUsageReallocator().allocate(list(reversed(pool)))
        assert forward == backward

    def test_tie_on_wants_breaks_on_site_id(self):
        # Two identical wants, supply fits only one: s0 (smaller id) is
        # rejected first, so s1 keeps its want.
        pool = states((0, 10), (0, 10), (10, 0))
        granted = GreedyMaxUsageReallocator().allocate(pool)
        assert granted["s1"] >= 10 or granted["s0"] >= 10
        assert sum(granted.values()) == 10


class TestProportional:
    def test_full_grant_when_supply_suffices(self):
        pool = states((100, 20), (100, 30))
        granted = ProportionalReallocator().allocate(pool)
        assert granted["s0"] >= 20 and granted["s1"] >= 30
        assert sum(granted.values()) == 200

    def test_scales_down_when_short(self):
        pool = states((30, 100), (30, 300))
        granted = ProportionalReallocator().allocate(pool)
        assert sum(granted.values()) == 60
        assert granted["s1"] > granted["s0"]


class TestEqualSplit:
    def test_ignores_wants(self):
        pool = states((100, 0), (0, 500))
        granted = EqualSplitReallocator().allocate(pool)
        assert granted == {"s0": 50, "s1": 50}


class TestValidation:
    def test_empty_input_rejected(self):
        with pytest.raises(ReallocationError):
            redistribute_tokens([])

    def test_duplicate_site_ids_rejected(self):
        pool = [
            SiteTokenState("s0", "VM", 1, 0),
            SiteTokenState("s0", "VM", 2, 0),
        ]
        with pytest.raises(ReallocationError):
            redistribute_tokens(pool)

    def test_mixed_entities_rejected(self):
        pool = [
            SiteTokenState("s0", "VM", 1, 0),
            SiteTokenState("s1", "DISK", 2, 0),
        ]
        with pytest.raises(ReallocationError):
            redistribute_tokens(pool)

    def test_broken_strategy_is_caught(self):
        class Leaky:
            def allocate(self, pool):
                return {state.site_id: state.tokens_left + 1 for state in pool}

        with pytest.raises(ReallocationError):
            redistribute_tokens(states((5, 0), (5, 0)), Leaky())


# -- property-based coverage ---------------------------------------------

site_states = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=1,
    max_size=12,
).map(lambda triples: states(*triples))

strategies = st.sampled_from(
    [GreedyMaxUsageReallocator(), ProportionalReallocator(), EqualSplitReallocator()]
)


@settings(max_examples=200)
@given(pool=site_states, strategy=strategies)
def test_property_conservation_and_nonnegativity(pool, strategy):
    granted = redistribute_tokens(pool, strategy)
    assert sum(granted.values()) == sum(state.tokens_left for state in pool)
    assert all(amount >= 0 for amount in granted.values())
    assert set(granted) == {state.site_id for state in pool}


@settings(max_examples=200)
@given(pool=site_states)
def test_property_greedy_satisfies_all_wants_when_supply_covers_them(pool):
    spare = sum(state.tokens_left for state in pool)
    total_wanted = sum(state.tokens_wanted for state in pool)
    granted = GreedyMaxUsageReallocator().allocate(pool)
    if total_wanted <= spare:
        for state in pool:
            assert granted[state.site_id] >= state.tokens_wanted


@settings(max_examples=200)
@given(pool=site_states)
def test_property_greedy_usage_at_least_largest_satisfiable_want(pool):
    """Greedy maximises usage: if ANY single want fits in the pool, the
    allocation grants at least one want in full."""
    spare = sum(state.tokens_left for state in pool)
    wants = [state.tokens_wanted for state in pool if state.tokens_wanted > 0]
    granted = GreedyMaxUsageReallocator().allocate(pool)
    if wants and max(wants) <= spare:
        satisfied = [
            state
            for state in pool
            if state.tokens_wanted > 0
            and granted[state.site_id] >= state.tokens_wanted
        ]
        assert satisfied, "greedy rejected every request although one fits"


@settings(max_examples=100)
@given(pool=site_states)
def test_property_determinism(pool):
    first = GreedyMaxUsageReallocator().allocate(pool)
    second = GreedyMaxUsageReallocator().allocate(list(reversed(pool)))
    assert first == second
