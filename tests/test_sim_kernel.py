"""Tests for the discrete-event kernel: ordering, cancellation, clocks."""

import pytest

from repro.sim.events import EventQueue
from repro.sim.kernel import Kernel, SimulationError


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.push(3.0, seen.append, (3,))
        queue.push(1.0, seen.append, (1,))
        queue.push(2.0, seen.append, (2,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert seen == [1, 2, 3]

    def test_equal_times_fire_in_scheduling_order(self):
        queue = EventQueue()
        seen = []
        for tag in range(10):
            queue.push(5.0, seen.append, (tag,))
        while (event := queue.pop()) is not None:
            event.fire()
        assert seen == list(range(10))

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        seen = []
        keep = queue.push(1.0, seen.append, ("keep",))
        drop = queue.push(0.5, seen.append, ("drop",))
        drop.cancel()
        event = queue.pop()
        event.fire()
        assert seen == ["keep"]
        assert queue.pop() is None
        assert keep is not drop

    def test_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert queue.pop() is None

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None


class TestKernel:
    def test_clock_advances_to_event_times(self):
        kernel = Kernel()
        times = []
        kernel.schedule(1.5, lambda: times.append(kernel.now))
        kernel.schedule(0.5, lambda: times.append(kernel.now))
        kernel.run()
        assert times == [0.5, 1.5]

    def test_run_until_stops_and_advances_clock(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, 1)
        kernel.schedule(5.0, fired.append, 5)
        kernel.run(until=2.0)
        assert fired == [1]
        assert kernel.now == 2.0
        kernel.run(until=6.0)
        assert fired == [1, 5]

    def test_scheduling_in_the_past_raises(self):
        kernel = Kernel()
        with pytest.raises(SimulationError):
            kernel.schedule(-0.1, lambda: None)
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        kernel = Kernel()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                kernel.schedule(1.0, chain, depth + 1)

        kernel.schedule(0.0, chain, 0)
        kernel.run()
        assert seen == [0, 1, 2, 3]
        assert kernel.now == 3.0

    def test_max_events_budget(self):
        kernel = Kernel()
        seen = []
        for index in range(10):
            kernel.schedule(float(index), seen.append, index)
        kernel.run(max_events=4)
        assert seen == [0, 1, 2, 3]

    def test_events_fired_counter(self):
        kernel = Kernel()
        for index in range(5):
            kernel.schedule(float(index), lambda: None)
        kernel.run()
        assert kernel.events_fired == 5

    def test_determinism_across_instances(self):
        def trajectory(seed):
            kernel = Kernel(seed=seed)
            rng = kernel.rng.stream("x")
            values = []
            for _ in range(20):
                kernel.schedule(rng.random(), lambda: values.append(kernel.now))
            kernel.run()
            return values

        assert trajectory(42) == trajectory(42)
        assert trajectory(42) != trajectory(43)


class TestRngRegistry:
    def test_streams_are_stable_and_independent(self):
        kernel = Kernel(seed=7)
        a1 = [kernel.rng.stream("a").random() for _ in range(5)]
        b1 = [kernel.rng.stream("b").random() for _ in range(5)]
        kernel2 = Kernel(seed=7)
        b2 = [kernel2.rng.stream("b").random() for _ in range(5)]
        a2 = [kernel2.rng.stream("a").random() for _ in range(5)]
        # Order of stream creation does not matter.
        assert a1 == a2
        assert b1 == b2
        assert a1 != b1

    def test_fork_derives_new_seed(self):
        kernel = Kernel(seed=7)
        fork = kernel.rng.fork("child")
        assert fork.master_seed != kernel.rng.master_seed
        assert fork.stream("a").random() != kernel.rng.stream("a").random()
