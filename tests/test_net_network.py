"""Tests for the geo network: latency, loss, partitions, crashes."""

import pytest

from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.net.regions import (
    PAPER_REGIONS,
    Region,
    closest_region,
    one_way_latency,
    rtt,
)
from repro.sim.kernel import Kernel
from repro.sim.process import Actor


class Sink(Actor):
    def __init__(self, kernel, name):
        super().__init__(kernel, name)
        self.received: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.received.append(message)


def build_pair(loss=0.0, jitter=0.0):
    kernel = Kernel(seed=3)
    network = Network(
        kernel, NetworkConfig(loss_probability=loss, jitter_sigma=jitter)
    )
    a = Sink(kernel, "a")
    b = Sink(kernel, "b")
    network.attach(a, Region.US_WEST1)
    network.attach(b, Region.ASIA_EAST2)
    return kernel, network, a, b


class TestRegions:
    def test_rtt_is_symmetric(self):
        for x in PAPER_REGIONS:
            for y in PAPER_REGIONS:
                assert rtt(x, y) == rtt(y, x)

    def test_intra_region_is_fast(self):
        assert rtt(Region.US_WEST1, Region.US_WEST1) < 0.002

    def test_one_way_is_half_rtt(self):
        assert one_way_latency(Region.US_WEST1, Region.ASIA_EAST2) == pytest.approx(
            rtt(Region.US_WEST1, Region.ASIA_EAST2) / 2
        )

    def test_all_paper_region_pairs_defined(self):
        for x in PAPER_REGIONS:
            for y in PAPER_REGIONS:
                assert rtt(x, y) > 0

    def test_closest_region(self):
        assert (
            closest_region(Region.US_WEST1, [Region.ASIA_EAST2, Region.US_CENTRAL1])
            == Region.US_CENTRAL1
        )

    def test_closest_region_empty_raises(self):
        with pytest.raises(ValueError):
            closest_region(Region.US_WEST1, [])


class TestDelivery:
    def test_message_arrives_after_base_latency(self):
        kernel, network, a, b = build_pair()
        network.send("a", "b", "hello")
        kernel.run()
        assert len(b.received) == 1
        expected = one_way_latency(Region.US_WEST1, Region.ASIA_EAST2)
        assert b.received[0].delivered_at == pytest.approx(expected, rel=0.05)

    def test_payload_and_routing_metadata(self):
        kernel, network, a, b = build_pair()
        network.send("a", "b", {"k": 1})
        kernel.run()
        message = b.received[0]
        assert message.src == "a"
        assert message.dst == "b"
        assert message.payload == {"k": 1}

    def test_unknown_destination_is_dropped(self):
        kernel, network, a, b = build_pair()
        network.send("a", "nobody", "x")
        kernel.run()
        assert network.messages_dropped == 1

    def test_crashed_endpoint_receives_nothing(self):
        kernel, network, a, b = build_pair()
        b.crash()
        network.send("a", "b", "x")
        kernel.run()
        assert b.received == []
        assert network.messages_dropped == 1

    def test_loss_probability_drops_fraction(self):
        kernel, network, a, b = build_pair(loss=0.5)
        for _ in range(400):
            network.send("a", "b", "x")
        kernel.run()
        assert 120 < len(b.received) < 280

    def test_zero_loss_delivers_all(self):
        kernel, network, a, b = build_pair()
        for _ in range(100):
            network.send("a", "b", "x")
        kernel.run()
        assert len(b.received) == 100

    def test_jitter_reorders_but_delivers(self):
        kernel, network, a, b = build_pair(jitter=0.5)
        for index in range(50):
            network.send("a", "b", index)
        kernel.run()
        payloads = [m.payload for m in b.received]
        assert sorted(payloads) == list(range(50))
        assert payloads != list(range(50))  # some reordering with high jitter

    def test_broadcast(self):
        kernel = Kernel()
        network = Network(kernel)
        sinks = [Sink(kernel, f"s{i}") for i in range(3)]
        for sink in sinks:
            network.attach(sink, Region.US_WEST1)
        network.broadcast("s0", ["s1", "s2"], "ping")
        kernel.run()
        assert len(sinks[1].received) == 1
        assert len(sinks[2].received) == 1

    def test_duplicate_attach_rejected(self):
        kernel, network, a, b = build_pair()
        with pytest.raises(ValueError):
            network.attach(a, Region.US_WEST1)

    def test_trace_hook_sees_every_send(self):
        kernel, network, a, b = build_pair()
        traced = []
        network.trace = traced.append
        network.send("a", "b", "x")
        network.send("a", "missing", "y")
        kernel.run()
        assert len(traced) == 2


class TestPartitions:
    def test_partition_blocks_cross_group_traffic(self):
        kernel, network, a, b = build_pair()
        network.partitions.partition([["a"], ["b"]])
        network.send("a", "b", "x")
        kernel.run()
        assert b.received == []

    def test_same_group_traffic_flows(self):
        kernel, network, a, b = build_pair()
        network.partitions.partition([["a", "b"]])
        network.send("a", "b", "x")
        kernel.run()
        assert len(b.received) == 1

    def test_heal_restores_connectivity(self):
        kernel, network, a, b = build_pair()
        network.partitions.partition([["a"], ["b"]])
        network.partitions.heal()
        network.send("a", "b", "x")
        kernel.run()
        assert len(b.received) == 1

    def test_partition_cuts_in_flight_messages(self):
        kernel, network, a, b = build_pair()
        network.send("a", "b", "x")  # in flight for ~77 ms
        kernel.schedule(0.01, network.partitions.partition, [["a"], ["b"]])
        kernel.run()
        assert b.received == []

    def test_unlisted_endpoint_is_isolated(self):
        kernel, network, a, b = build_pair()
        network.partitions.partition([["a"]])
        network.send("a", "b", "x")
        network.send("b", "a", "y")
        kernel.run()
        assert b.received == []
        assert a.received == []

    def test_endpoint_in_two_groups_rejected(self):
        kernel, network, a, b = build_pair()
        with pytest.raises(ValueError):
            network.partitions.partition([["a"], ["a", "b"]])
