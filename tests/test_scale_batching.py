"""Round batching: coalescing, transparent unpacking, and the pinned
batched-versus-unbatched parity run.
"""

import pytest

from repro.net.message import Message
from repro.scale.batching import (
    BatchEnvelope,
    BatchingTransport,
    _UnbatchProxy,
)
from repro.scale.harness import (
    ScaleConfig,
    per_entity_committed,
    run_scale,
)
from repro.sim.kernel import Kernel


class RecordingInner:
    """Send-side stub: just records what reaches the wire."""

    def __init__(self):
        self.sent = []

    def send(self, src, dst, payload):
        self.sent.append((src, dst, payload))


class RecordingEndpoint:
    """Receive-side stub implementing the endpoint protocol."""

    def __init__(self, name="site-b"):
        self.name = name
        self.crashed = False
        self.messages = []

    def on_message(self, message):
        self.messages.append(message)


class TestCoalescing:
    def test_same_tick_same_link_sends_one_envelope(self):
        kernel = Kernel(seed=0)
        inner = RecordingInner()
        transport = BatchingTransport(inner, kernel)
        transport.send("a", "b", "p1")
        transport.send("a", "b", "p2")
        transport.send("a", "b", "p3")
        assert inner.sent == []  # buffered until the flush event
        kernel.run(max_events=10)
        assert len(inner.sent) == 1
        src, dst, envelope = inner.sent[0]
        assert (src, dst) == ("a", "b")
        assert isinstance(envelope, BatchEnvelope)
        assert [item.payload for item in envelope.items] == ["p1", "p2", "p3"]
        assert transport.stats() == {
            "logical_sent": 3,
            "batches_sent": 1,
            "batched_payloads": 3,
            "passthrough_sent": 0,
            "batches_delivered": 0,
        }

    def test_single_payload_flushes_bare(self):
        kernel = Kernel(seed=0)
        inner = RecordingInner()
        transport = BatchingTransport(inner, kernel)
        transport.send("a", "b", "solo")
        kernel.run(max_events=10)
        assert inner.sent == [("a", "b", "solo")]
        assert transport.passthrough_sent == 1
        assert transport.batches_sent == 0

    def test_links_buffer_independently(self):
        kernel = Kernel(seed=0)
        inner = RecordingInner()
        transport = BatchingTransport(inner, kernel)
        transport.send("a", "b", "ab1")
        transport.send("a", "c", "ac1")
        transport.send("a", "b", "ab2")
        kernel.run(max_events=10)
        # a->b coalesced, a->c went bare: one envelope + one payload.
        assert len(inner.sent) == 2
        by_dst = {dst: payload for _, dst, payload in inner.sent}
        assert isinstance(by_dst["b"], BatchEnvelope)
        assert by_dst["c"] == "ac1"

    def test_later_ticks_start_new_batches(self):
        kernel = Kernel(seed=0)
        inner = RecordingInner()
        transport = BatchingTransport(inner, kernel)
        transport.send("a", "b", "t0-1")
        transport.send("a", "b", "t0-2")
        kernel.run(max_events=10)
        kernel.schedule(1.0, transport.send, "a", "b", "t1-1")
        kernel.schedule(1.0, transport.send, "a", "b", "t1-2")
        kernel.run(max_events=10)
        assert transport.batches_sent == 2
        assert all(len(env.items) == 2 for _, _, env in inner.sent)

    def test_broadcast_fans_out_through_send(self):
        kernel = Kernel(seed=0)
        inner = RecordingInner()
        transport = BatchingTransport(inner, kernel)
        transport.broadcast("a", ["b", "c"], "hello")
        kernel.run(max_events=10)
        assert transport.logical_sent == 2
        assert transport.passthrough_sent == 2


class TestUnpacking:
    @staticmethod
    def _envelope_message():
        """A wire Message carrying a two-item envelope ("p1", "p2")."""
        kernel = Kernel(seed=0)
        inner = RecordingInner()
        sender = BatchingTransport(inner, kernel)
        sender.send("site-a", "site-b", "p1")
        sender.send("site-a", "site-b", "p2")
        kernel.run(max_events=10)
        _, _, envelope = inner.sent[0]
        return Message(
            src="site-a", dst="site-b", payload=envelope,
            sent_at=0.0, delivered_at=0.1, msg_id=999,
        )

    def test_envelope_unpacks_to_inner_messages_with_stored_ids(self):
        transport = BatchingTransport(RecordingInner(), Kernel(seed=0))
        message = self._envelope_message()
        endpoint = RecordingEndpoint()
        proxy = _UnbatchProxy(endpoint, transport)
        proxy.on_message(message)
        assert [m.payload for m in endpoint.messages] == ["p1", "p2"]
        first_ids = [m.msg_id for m in endpoint.messages]
        # Inner ids were minted at buffering time, not delivery time:
        # re-delivering the same envelope (a modeled retransmission)
        # reconstructs the *same* ids, which is what lets the receiver's
        # EnvelopeDedup absorb duplicated batches.
        proxy.on_message(message)
        assert [m.msg_id for m in endpoint.messages] == first_ids * 2
        assert transport.batches_delivered == 2

    def test_non_envelope_payloads_pass_through(self):
        kernel = Kernel(seed=0)
        transport = BatchingTransport(RecordingInner(), kernel)
        endpoint = RecordingEndpoint()
        proxy = _UnbatchProxy(endpoint, transport)
        bare = Message(src="a", dst="b", payload="plain", sent_at=0.0)
        proxy.on_message(bare)
        assert endpoint.messages == [bare]
        assert transport.batches_delivered == 0

    def test_unpack_stops_when_endpoint_crashes_mid_batch(self):
        transport = BatchingTransport(RecordingInner(), Kernel(seed=0))

        class CrashingEndpoint(RecordingEndpoint):
            def on_message(self, message):
                super().on_message(message)
                self.crashed = True

        endpoint = CrashingEndpoint()
        proxy = _UnbatchProxy(endpoint, transport)
        proxy.on_message(self._envelope_message())
        assert [m.payload for m in endpoint.messages] == ["p1"]


class TestBatchedRunParity:
    """Acceptance pin: batching changes the wire, never the outcome."""

    @staticmethod
    def _config(batching: bool) -> ScaleConfig:
        # Two regions: the majority quorum is *all* sites, so every
        # round pools the full cluster and redistribution outcomes are
        # independent of responder arrival order.  All tokens start at
        # region 0 ("first") and every driver acquires up to exactly
        # half the per-entity maximum, so global demand equals supply
        # and every queued acquire must eventually commit.
        return ScaleConfig(
            entities=300,
            regions=2,
            maximum=30,
            duration=10.0,
            rate=600.0,
            seed=7,
            batching=batching,
            acquire_fraction=1.0,
            per_entity_budget=15,
            hot_entities=64,
            placement="first",
        )

    def test_batched_and_unbatched_outcomes_identical(self):
        batched, batched_dep = run_scale(
            self._config(True), keep_deployment=True
        )
        plain, plain_dep = run_scale(
            self._config(False), keep_deployment=True
        )
        # Both runs are clean under the strict conservation audit.
        assert batched.drained and plain.drained
        assert batched.violations == [] and plain.violations == []
        assert batched.audited == plain.audited == 300
        # Identical audited outcomes, per entity, not just in aggregate.
        batched_commits = list(per_entity_committed(batched_dep))
        plain_commits = list(per_entity_committed(plain_dep))
        assert batched_commits == plain_commits
        assert batched.committed == plain.committed
        assert batched.rejected == plain.rejected
        # And batching genuinely coalesced: fewer wire envelopes for the
        # same logical traffic.
        assert batched.batching is not None
        assert batched.batching["batches_sent"] > 0
        assert plain.batching is None
        assert batched.wire_sent < plain.wire_sent

    def test_redistribution_moves_tokens_to_demand(self):
        result = run_scale(self._config(True))
        # All tokens start at region 0, so region 1's commits require
        # redistribution rounds to have moved tokens — and with demand
        # equal to supply almost everything is served (a small tail
        # exhausts its bounded queue patience, max_round_waits).
        assert result.rounds_applied > 0
        assert result.queued_unresolved == 0
        assert result.committed > 10 * result.rejected


def test_scale_smoke_three_regions():
    result = run_scale(
        ScaleConfig(entities=50, regions=3, duration=5.0, rate=200.0, seed=3)
    )
    assert result.submitted > 0
    assert result.committed > 0
    assert result.drained
    assert result.violations == []
