"""Tests for the Demarcation/Escrow baseline."""

from repro.baselines.demarcation import (
    DemarcationCluster,
    DemarcationConfig,
    EscrowConservationChecker,
)
from repro.core.entity import Entity
from repro.metrics.hub import MetricsHub
from repro.net.network import Network, NetworkConfig
from repro.net.regions import PAPER_REGIONS
from repro.sim.kernel import Kernel

from tests.helpers import acquire_burst, uniform_ops


def build(seed=1, loss=0.0, maximum=300, regions=3, config=None):
    kernel = Kernel(seed=seed)
    network = Network(kernel, NetworkConfig(loss_probability=loss))
    cluster = DemarcationCluster(
        kernel, network, Entity("VM", maximum), list(PAPER_REGIONS[:regions]),
        config=config,
    )
    hub = MetricsHub()
    checker = EscrowConservationChecker(maximum)
    checker._sites = cluster.sites
    return kernel, cluster, hub, checker


class TestLocalServing:
    def test_serves_within_escrow_locally(self):
        kernel, cluster, hub, checker = build()
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(1.0, 50), metrics=hub)
        cluster.start()
        kernel.run(until=5.0)
        assert hub.committed == 50
        assert hub.latency_summary().p90 < 0.005
        assert cluster.sites[0].counters["borrow_requests"] == 0
        checker.check()

    def test_initial_escrow_split_evenly(self):
        kernel, cluster, hub, checker = build(maximum=301)
        balances = sorted(site.state.tokens_left for site in cluster.sites)
        assert sum(balances) == 301
        assert balances[-1] - balances[0] <= 1


class TestBorrowing:
    def test_exhaustion_borrows_from_peers(self):
        kernel, cluster, hub, checker = build()
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(1.0, 150), metrics=hub)
        cluster.start()
        kernel.run(until=30.0)
        assert hub.committed == 150
        assert cluster.sites[0].counters["tokens_borrowed"] > 0
        checker.check()

    def test_lender_keeps_its_reserve(self):
        config = DemarcationConfig(min_keep_fraction=0.2)
        kernel, cluster, hub, checker = build(config=config)
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(1.0, 250), metrics=hub)
        cluster.start()
        kernel.run(until=30.0)
        # Lenders never drop below 20% of their initial escrow.
        for site in cluster.sites[1:]:
            assert site.state.tokens_left >= site.min_keep
        checker.check()

    def test_borrow_latency_visible_in_tail(self):
        kernel, cluster, hub, checker = build()
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(1.0, 150), metrics=hub)
        cluster.start()
        kernel.run(until=30.0)
        summary = hub.latency_summary()
        # Requests stalled behind a WAN borrow round trip.
        assert summary.maximum > 0.05
        assert summary.p50 < 0.01

    def test_global_exhaustion_rejects(self):
        kernel, cluster, hub, checker = build(maximum=90)
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(1.0, 150, spacing=0.05), metrics=hub)
        cluster.start()
        kernel.run(until=60.0)
        assert hub.rejected > 0
        assert hub.committed < 95
        checker.check()


class TestReliableNetworkAssumption:
    def test_dropped_grant_strands_the_tokens(self):
        """The paper's critique: the lender decrements *before* the grant
        travels, so a dropped grant permanently strands the escrow."""
        from repro.baselines.demarcation import BorrowRequest

        kernel, cluster, hub, checker = build()
        lender = cluster.sites[1]
        before = lender.state.tokens_left
        # A borrow request whose reply has nowhere to go: the grant is
        # dropped by the network exactly like a lost message.
        lender._on_borrow_request(BorrowRequest("VM", 25, borrow_id=1), "vanished-site")
        kernel.run(until=5.0)
        assert lender.state.tokens_left == before - 25
        assert checker.in_transit_tokens() == 25
        checker.check()  # conserved only once transit is accounted

    def test_no_loss_means_no_transit_residue(self):
        kernel, cluster, hub, checker = build()
        cluster.add_client(PAPER_REGIONS[0], acquire_burst(1.0, 150), metrics=hub)
        cluster.start()
        kernel.run(until=60.0)
        assert checker.in_transit_tokens() == 0
        checker.check()


class TestConservationUnderChurn:
    def test_mixed_load_conserves(self):
        kernel, cluster, hub, checker = build(seed=5)
        for index, region in enumerate(PAPER_REGIONS[:3]):
            cluster.add_client(
                region, uniform_ops(index, 400, rate=20, acquire_fraction=0.8),
                metrics=hub,
            )
        cluster.start()
        kernel.run(until=60.0)
        checker.check()
        assert hub.committed > 0
