"""Tests for trace persistence."""

import csv

import numpy as np
import pytest

from repro.workload.io import export_demand_csv, load_trace, save_trace
from repro.workload.trace import SyntheticAzureTrace, TraceConfig


@pytest.fixture
def trace():
    return SyntheticAzureTrace(TraceConfig(days=2.0, seed=9))


class TestNpzRoundTrip:
    def test_series_survive(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.creations, trace.creations)
        assert np.array_equal(loaded.deletions, trace.deletions)
        assert np.array_equal(loaded.outstanding, trace.outstanding)

    def test_config_survives(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.config == trace.config

    def test_loaded_trace_is_not_regenerated(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        # Mutate the stored series before use: the loaded object carries
        # them verbatim, so demand_stats reflects exactly the file.
        assert loaded.demand_stats()["mean"] == trace.demand_stats()["mean"]

    def test_loaded_trace_usable_by_workload_pipeline(self, trace, tmp_path):
        from repro.net.regions import Region
        from repro.workload.requests import regional_operations

        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        ops = regional_operations(loaded, [Region.US_WEST1], duration=20.0)
        assert ops[Region.US_WEST1]


class TestCsvExport:
    def test_csv_rows_match_series(self, trace, tmp_path):
        path = tmp_path / "demand.csv"
        export_demand_csv(trace, path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["interval", "creations", "deletions", "outstanding"]
        assert len(rows) == len(trace.creations) + 1
        assert int(rows[1][1]) == int(trace.creations[0])
        assert int(rows[-1][3]) == int(trace.outstanding[-1])
