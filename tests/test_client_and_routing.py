"""Tests for workload clients, app managers, and routing policies."""

from repro.core.app_manager import AppManager, ClosestRegionRouting, FixedTargetRouting
from repro.core.client import Operation, WorkloadClient
from repro.core.requests import ClientRequest, RequestKind, RequestStatus
from repro.net.regions import Region

from tests.helpers import MiniCluster, acquire_burst


def request(kind=RequestKind.ACQUIRE, amount=1):
    return ClientRequest(
        kind=kind, entity_id="VM", amount=amount, client="c", region="r"
    )


class TestClosestRegionRouting:
    def test_prefers_same_region(self):
        mini = MiniCluster()
        routing = mini.cluster.app_managers[mini.site(0).region].routing
        target = routing.select(request(), mini.site(0).region)
        assert target == mini.site(0).name

    def test_fails_over_when_closest_crashed(self):
        mini = MiniCluster()
        mini.site(0).crash()
        routing = mini.cluster.app_managers[mini.site(0).region].routing
        target = routing.select(request(), mini.site(0).region)
        assert target is not None and target != mini.site(0).name

    def test_returns_none_when_all_crashed(self):
        mini = MiniCluster()
        for site in mini.sites:
            site.crash()
        routing = mini.cluster.app_managers[mini.site(0).region].routing
        assert routing.select(request(), mini.site(0).region) is None

    def test_round_robins_within_region(self):
        mini = MiniCluster()
        routing = ClosestRegionRouting(mini.network, mini.sites[:1] * 1)
        # Two co-located fake sites by reusing the same region.
        routing._sites = [mini.site(0), mini.site(0)]
        first = routing.select(request(), mini.site(0).region)
        second = routing.select(request(), mini.site(0).region)
        assert first == second == mini.site(0).name  # same name, but rotation ran
        assert routing._rotation == 2


class TestFixedTargetRouting:
    def test_static_target(self):
        routing = FixedTargetRouting("leader-1")
        assert routing.select(request(), Region.US_WEST1) == "leader-1"

    def test_callable_target_moves(self):
        current = {"leader": "a"}
        routing = FixedTargetRouting(lambda: current["leader"])
        assert routing.select(request(), Region.US_WEST1) == "a"
        current["leader"] = "b"
        assert routing.select(request(), Region.US_WEST1) == "b"


class TestAppManager:
    def test_unroutable_request_fails_immediately(self):
        mini = MiniCluster()
        for site in mini.sites:
            site.crash()
        client = mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=3))
        mini.run(until=5.0)
        assert mini.metrics.failed == 3

    def test_responses_resolve_inflight(self):
        mini = MiniCluster()
        manager = mini.cluster.app_managers[mini.site(0).region]
        mini.client_for(mini.site(0).region, acquire_burst(start=1.0, count=5))
        mini.run(until=5.0)
        assert manager.relayed == 5
        assert len(manager._inflight) == 0


class TestWorkloadClient:
    def test_release_clamped_to_outstanding(self):
        mini = MiniCluster()
        client = mini.client_for(
            mini.site(0).region,
            [
                Operation(1.0, RequestKind.RELEASE, 5),  # nothing held: skipped
                Operation(2.0, RequestKind.ACQUIRE, 3),
                Operation(3.0, RequestKind.RELEASE, 10),  # clamped to 3
            ],
        )
        mini.run(until=6.0)
        assert client.skipped_releases == 1
        assert client.outstanding == 0
        assert mini.site(0).state.tokens_left == 100  # 3 out, 3 back

    def test_window_sheds_excess_offered_load(self):
        mini = MiniCluster()
        mini.site(0).crash()
        mini.site(1).crash()
        mini.site(2).crash()
        # Nothing can answer; with a window of 2 everything else is shed
        # or failed-unroutable... route requires a live site, so FAILED.
        client = mini.client_for(mini.site(0).region, acquire_burst(1.0, 10))
        client.max_outstanding = 2
        mini.run(until=5.0)
        assert mini.metrics.failed == 10  # unroutable -> instant FAILED

    def test_window_expiry_frees_slots(self):
        mini = MiniCluster()
        client = mini.client_for(
            mini.site(0).region, acquire_burst(start=1.0, count=30, spacing=1.0)
        )
        client.max_outstanding = 2
        client.request_timeout = 3.0
        # Crash the serving site after the first responses, leaving
        # in-flight requests unanswered.
        mini.kernel.schedule(2.5, mini.site(0).crash)
        mini.kernel.schedule(2.5, mini.site(1).crash)
        mini.kernel.schedule(2.5, mini.site(2).crash)
        mini.run(until=40.0)
        # The client kept issuing after expiring zombies.
        assert mini.metrics.failed > 0

    def test_open_loop_issue_times_follow_trace(self):
        mini = MiniCluster()
        client = mini.client_for(
            mini.site(0).region,
            [Operation(2.0, RequestKind.ACQUIRE, 1), Operation(4.0, RequestKind.ACQUIRE, 1)],
        )
        mini.run(until=10.0)
        assert client.issued == 2
        assert mini.metrics.committed == 2

    def test_crashed_client_stops_issuing(self):
        mini = MiniCluster()
        client = mini.client_for(
            mini.site(0).region, acquire_burst(start=1.0, count=100, spacing=0.1)
        )
        mini.kernel.schedule(2.0, client.crash)
        mini.run(until=60.0)
        assert client.issued < 100
