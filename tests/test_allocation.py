"""Tests for initial allocation policies (§5.2's uneven-start option)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import split_initial_allocation
from repro.harness.experiment import ExperimentConfig, build_experiment, run_experiment
from repro.net.regions import PAPER_REGIONS
from repro.workload.allocation import historic_allocation, proportional_split
from repro.workload.trace import SyntheticAzureTrace, TraceConfig


class TestProportionalSplit:
    def test_exact_proportions(self):
        assert proportional_split(100, [1.0, 1.0, 2.0]) == [25, 25, 50]

    def test_largest_remainder_rounding(self):
        shares = proportional_split(10, [1.0, 1.0, 1.0])
        assert sum(shares) == 10
        assert sorted(shares) == [3, 3, 4]

    def test_zero_weights_fall_back_to_even(self):
        assert proportional_split(9, [0.0, 0.0, 0.0]) == [3, 3, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            proportional_split(-1, [1.0])
        with pytest.raises(ValueError):
            proportional_split(10, [])
        with pytest.raises(ValueError):
            proportional_split(10, [1.0, -1.0])

    @settings(max_examples=200)
    @given(
        maximum=st.integers(0, 100_000),
        weights=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=20),
    )
    def test_property_sums_exactly_and_nonnegative(self, maximum, weights):
        shares = proportional_split(maximum, weights)
        assert sum(shares) == maximum
        assert all(share >= 0 for share in shares)
        assert len(shares) == len(weights)


class TestSplitInitialAllocation:
    def test_even_split_with_remainder_to_first_sites(self):
        assert split_initial_allocation(10, 3) == [4, 3, 3]
        assert split_initial_allocation(9, 3) == [3, 3, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_initial_allocation(10, 0)
        with pytest.raises(ValueError):
            split_initial_allocation(-1, 3)

    @settings(max_examples=200)
    @given(
        maximum=st.integers(0, 100_000),
        sites=st.integers(1, 50),
    )
    def test_property_conserves_and_balances(self, maximum, sites):
        shares = split_initial_allocation(maximum, sites)
        assert len(shares) == sites
        assert sum(shares) == maximum
        assert all(share >= 0 for share in shares)
        # No site is ever more than one token ahead of another.
        assert max(shares) - min(shares) <= 1


class TestHistoricAllocation:
    def test_sums_to_maximum(self):
        trace = SyntheticAzureTrace(TraceConfig(days=4.0))
        shares = historic_allocation(trace, list(PAPER_REGIONS), 5000, end_interval=96)
        assert sum(shares) == 5000
        assert len(shares) == 5

    def test_uneven_when_window_is_sub_daily(self):
        trace = SyntheticAzureTrace(TraceConfig(days=4.0))
        shares = historic_allocation(
            trace, list(PAPER_REGIONS), 5000, window_intervals=72, end_interval=96
        )
        assert max(shares) - min(shares) > 200  # phases differ materially

    def test_full_day_window_degenerates_toward_even(self):
        trace = SyntheticAzureTrace(TraceConfig(days=8.0))
        shares = historic_allocation(
            trace, list(PAPER_REGIONS), 5000, window_intervals=288 * 7,
            end_interval=288 * 7,
        )
        assert max(shares) - min(shares) < 300

    def test_invalid_window(self):
        trace = SyntheticAzureTrace(TraceConfig(days=2.0))
        with pytest.raises(ValueError):
            historic_allocation(trace, list(PAPER_REGIONS), 100, window_intervals=0)


class TestHarnessIntegration:
    def test_historic_allocation_builds_and_conserves(self):
        config = ExperimentConfig(
            duration=20.0, seed=2, trace=TraceConfig(days=2.0),
            start_interval=48, initial_allocation="historic",
            invariant_interval=5.0,
        )
        experiment = build_experiment(config)
        balances = [site.state.tokens_left for site in experiment.cluster.sites]
        assert sum(balances) == config.maximum
        assert max(balances) != min(balances)  # genuinely uneven
        result = experiment.run()
        assert result.committed > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig(initial_allocation="astrology")

    def test_historic_with_replicas(self):
        config = ExperimentConfig(
            duration=10.0, seed=2, trace=TraceConfig(days=2.0),
            start_interval=48, initial_allocation="historic",
            sites_per_region=2, invariant_interval=5.0,
        )
        experiment = build_experiment(config)
        assert sum(s.state.tokens_left for s in experiment.cluster.sites) == config.maximum
