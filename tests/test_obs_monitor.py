"""Tests for the active-monitoring layer: auditor, registry, exposition.

The corruption tests are the point of the auditor: take a *real* traced
run, tamper with the stream the way a bug (or a forged trace) would,
and assert the audit catches it.  The golden tests pin the other side:
fixed-seed runs of all protocol variants audit clean, and auditing
changes no measured number.
"""

import asyncio
import gzip
import json
import urllib.request

import pytest

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.metrics.invariants import ConservationChecker, InvariantViolation
from repro.net.regions import Region
from repro.harness.scenarios import RegionFault
from repro.obs import (
    EventBus,
    JsonlSink,
    RingSink,
    audit_events,
    feed_registry,
    format_audit_report,
    read_trace,
)
from repro.obs.exposition import CONTENT_TYPE, MetricsServer, render_prometheus
from repro.obs.registry import OVERFLOW_LABEL, Counter, MetricsRegistry
from repro.obs.summary import fault_rows, invariant_rows
from repro.sim.kernel import Kernel
from repro.workload.trace import TraceConfig


def quick_config(**overrides):
    defaults = dict(
        duration=20.0,
        seed=2,
        trace=TraceConfig(days=2.0),
        start_interval=0,
        invariant_interval=5.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def traced_run(config):
    sink = RingSink()
    experiment = Experiment(config, trace_sink=sink)
    result = experiment.run()
    return result, sink.events()


HEADER = [
    {"ts": 0.0, "type": "run.meta", "schema": "repro-trace/1", "substrate": "sim",
     "system": "samya-majority", "seed": 1, "duration": 10.0, "maximum": 100,
     "predictor": "none", "reallocator": "greedy"},
]


class TestAuditorStructural:
    def test_clean_synthetic_stream(self):
        auditor = audit_events(HEADER + [
            {"ts": 1.0, "type": "span.begin", "span": "request", "span_id": 1,
             "node": "c1"},
            {"ts": 2.0, "type": "span.end", "span": "request", "span_id": 1,
             "node": "c1", "dur": 1.0, "outcome": "granted"},
        ])
        assert auditor.ok
        assert auditor.events_seen == 3

    def test_clock_regression_flagged(self):
        auditor = audit_events(HEADER + [
            {"ts": 5.0, "type": "epoch.close", "node": "s1", "demand": 1.0},
            {"ts": 4.0, "type": "epoch.close", "node": "s1", "demand": 1.0},
        ])
        assert [v.invariant for v in auditor.violations] == ["clock-monotonic"]

    def test_missing_meta_flagged(self):
        auditor = audit_events(
            [{"ts": 0.0, "type": "epoch.close", "node": "s1", "demand": 1.0}]
        )
        assert [v.invariant for v in auditor.violations] == ["meta-first"]

    def test_duplicate_span_open_and_orphan_close(self):
        auditor = audit_events(HEADER + [
            {"ts": 1.0, "type": "span.begin", "span": "request", "span_id": 1,
             "node": "c1"},
            {"ts": 1.5, "type": "span.begin", "span": "request", "span_id": 1,
             "node": "c1"},
            {"ts": 2.0, "type": "span.end", "span": "request", "span_id": 9,
             "node": "c1", "dur": 1.0},
        ])
        assert [v.invariant for v in auditor.violations] == [
            "span-open-close", "span-open-close",
        ]

    def test_open_span_at_end_is_legal(self):
        auditor = audit_events(HEADER + [
            {"ts": 1.0, "type": "span.begin", "span": "request", "span_id": 1,
             "node": "c1"},
        ])
        assert auditor.ok
        assert "1 span(s) left open" in auditor.summary()

    def test_untraced_message_flagged(self):
        auditor = audit_events(HEADER + [
            {"ts": 1.0, "type": "msg.send", "msg_type": "TokenRequest",
             "src": "a", "dst": "b", "src_region": "us-east1",
             "dst_region": "us-west1"},
        ])
        assert [v.invariant for v in auditor.violations] == ["untraced-message"]

    def test_delivery_without_send_flagged(self):
        auditor = audit_events(HEADER + [
            {"ts": 1.0, "type": "msg.deliver", "msg_type": "TokenRequest",
             "src": "a", "dst": "b", "src_region": "us-east1",
             "dst_region": "us-west1", "latency": 0.01, "trace_id": "req:1"},
        ])
        assert [v.invariant for v in auditor.violations] == ["message-accounting"]

    def test_conservation_arithmetic_reverified(self):
        auditor = audit_events(HEADER + [
            {"ts": 5.0, "type": "invariant.check", "settled": 60,
             "outstanding": 30, "transit": 0, "maximum": 100},
        ])
        assert [v.invariant for v in auditor.violations] == ["conservation"]
        assert auditor.checks_verified == 1

    def test_reported_violation_surfaced(self):
        auditor = audit_events(HEADER + [
            {"ts": 5.0, "type": "invariant.violation", "invariant": "agreement",
             "detail": "sites disagree", "value_id": "v1"},
        ])
        assert [v.invariant for v in auditor.violations] == ["reported-violation"]

    def test_negative_tokens_flagged(self):
        auditor = audit_events(HEADER + [
            {"ts": 1.0, "type": "site.serve", "node": "s1", "amount": 5,
             "tokens_left": -3, "trace_id": "req:1"},
        ])
        assert [v.invariant for v in auditor.violations] == ["negative-tokens"]

    def test_violation_cap_keeps_counting(self):
        events = list(HEADER)
        for i in range(10):
            events.append(
                {"ts": float(i + 1), "type": "site.serve", "node": "s1",
                 "amount": 1, "tokens_left": -1, "trace_id": f"req:{i}"}
            )
        auditor = audit_events(events)
        auditor.max_recorded = 3  # applied before observe in real use
        assert auditor.violation_count == 10
        report = format_audit_report(auditor)
        assert "10 violation(s)" in report


class TestAuditorOnRealTraces:
    """Corrupt a genuine trace and the audit must notice."""

    def _events(self, **overrides):
        _, events = traced_run(quick_config(**overrides))
        return events

    def test_golden_runs_audit_clean(self):
        for system in ("samya-majority", "samya-star", "multipaxsys"):
            auditor = audit_events(self._events(system=system))
            assert auditor.ok, f"{system}: {format_audit_report(auditor)}"
            assert auditor.checks_verified > 0 or system == "multipaxsys"

    def test_dropped_span_close_detected(self):
        events = self._events()
        closes = [e for e in events if e["type"] == "span.end"]
        victim = closes[len(closes) // 2]
        # A dropped close plus a *reused* id: the second open of the
        # victim's span id must now collide.
        corrupted = [e for e in events if e is not victim]
        corrupted.append(
            {"ts": events[-1]["ts"], "type": "span.end", "span": "not-a-span",
             "span_id": victim["span_id"], "node": "x"}
        )
        auditor = audit_events(corrupted)
        assert not auditor.ok
        assert any(v.invariant == "span-open-close" for v in auditor.violations)

    def test_forged_conservation_leak_detected(self):
        events = self._events()
        checks = [e for e in events if e["type"] == "invariant.check"]
        assert checks, "traced run must carry conservation checks"
        forged = []
        for event in events:
            if event is checks[-1]:
                event = dict(event, settled=event["settled"] - 7)
            forged.append(event)
        auditor = audit_events(forged)
        assert any(v.invariant == "conservation" for v in auditor.violations)

    def test_audited_run_matches_unaudited(self):
        plain = Experiment(quick_config()).run()
        audited = Experiment(quick_config(audit=True, metrics=True)).run()
        assert audited.audit_violations == []
        assert (plain.committed, plain.rejected, plain.failed) == (
            audited.committed, audited.rejected, audited.failed
        )
        assert audited.metrics_snapshot  # registry rode along

    def test_online_auditor_subscribed_as_tap(self):
        experiment = Experiment(quick_config(audit=True))
        result = experiment.run()
        assert experiment.auditor is not None
        assert experiment.auditor.events_seen > 0
        assert result.audit_violations == []


class TestCheckerReporting:
    """ConservationChecker: raise without a bus, emit with one."""

    def test_without_bus_raises(self):
        checker = ConservationChecker(100)
        with pytest.raises(InvariantViolation):
            checker._violation("conservation", "boom")

    def test_with_bus_emits_event(self):
        kernel = Kernel(seed=1)
        sink = RingSink()
        checker = ConservationChecker(100)
        checker.obs = EventBus(kernel, sink)
        checker._violation("conservation", "boom", value_id="v9")
        assert checker.violations == 1
        (event,) = sink.events()
        assert event["type"] == "invariant.violation"
        assert event["invariant"] == "conservation"
        assert event["value_id"] == "v9"

    def test_traced_unaudited_violation_fails_collect(self):
        experiment = Experiment(quick_config(trace_path=None, metrics=True))
        assert experiment.checker is not None and experiment.obs is not None
        experiment.start()
        experiment.kernel.run(until=experiment.config.duration)
        experiment.checker._violation("conservation", "injected leak")
        with pytest.raises(InvariantViolation):
            experiment.collect()


class TestRegistry:
    def test_feed_counts_and_snapshot(self):
        registry = feed_registry(HEADER + [
            {"ts": 1.0, "type": "msg.send", "msg_type": "TokenRequest",
             "src": "a", "dst": "b", "src_region": "us-east1",
             "dst_region": "us-west1", "trace_id": "req:1"},
            {"ts": 1.1, "type": "msg.deliver", "msg_type": "TokenRequest",
             "src": "a", "dst": "b", "src_region": "us-east1",
             "dst_region": "us-west1", "latency": 0.1, "trace_id": "req:1"},
            {"ts": 2.0, "type": "span.end", "span": "request", "span_id": 1,
             "node": "c1", "dur": 0.004, "outcome": "granted"},
            {"ts": 3.0, "type": "fault.crash", "targets": "s1,c1"},
            {"ts": 4.0, "type": "invariant.check", "settled": 70,
             "outstanding": 30, "maximum": 100},
        ])
        snap = registry.snapshot()
        assert snap['repro_messages_total{event="send",msg_type="TokenRequest"}'] == 1
        assert snap['repro_faults_total{action="crash"}'] == 1
        assert snap["repro_invariant_checks_total"] == 1
        assert snap['repro_requests_total{outcome="granted"}'] == 1
        assert snap["repro_clock_seconds"] == 4.0
        key = 'repro_message_latency_seconds{src_region="us-east1",dst_region="us-west1"}'
        assert snap[key + "_count"] == 1
        assert snap[key + "_sum"] == pytest.approx(0.1)

    def test_snapshot_json_safe(self):
        _, events = traced_run(quick_config())
        snap = feed_registry(events).snapshot()
        json.dumps(snap)  # must not raise
        assert any(key.startswith("repro_events_total") for key in snap)

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_histogram_buckets_cumulative_in_render(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0))
        histogram.observe(value=0.05)
        histogram.observe(value=0.5)
        histogram.observe(value=5.0)
        text = render_prometheus(registry)
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1.0"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_label_cardinality_caps_at_overflow_cell(self):
        registry = MetricsRegistry(max_label_values=3)
        counter = registry.counter("per_entity_total", labelnames=("entity",))
        for index in range(10):
            counter.inc(f"e{index}")
        # Three real cells plus the overflow bucket; totals stay exact.
        assert len(counter.cells) == 4
        assert counter.cells[(OVERFLOW_LABEL,)] == 7
        assert sum(counter.cells.values()) == 10

    def test_existing_cells_keep_updating_past_the_cap(self):
        registry = MetricsRegistry(max_label_values=2)
        counter = registry.counter("x_by_label", labelnames=("label",))
        counter.inc("a")
        counter.inc("b")
        counter.inc("c")  # new combination: overflows
        counter.inc("a")  # existing cell: still attributed exactly
        assert counter.cells[("a",)] == 2
        assert counter.cells[("b",)] == 1
        assert counter.cells[(OVERFLOW_LABEL,)] == 1

    def test_histograms_overflow_too(self):
        registry = MetricsRegistry(max_label_values=1)
        histogram = registry.histogram("h_by_node", labelnames=("node",))
        histogram.observe("n0", value=0.5)
        histogram.observe("n1", value=0.5)
        assert histogram.count("n0") == 1
        assert histogram.count(OVERFLOW_LABEL) == 1

    def test_directly_constructed_instruments_are_unbounded(self):
        counter = Counter("free", "", labelnames=("entity",))
        for index in range(2000):
            counter.inc(f"e{index}")
        assert len(counter.cells) == 2000

    def test_nonpositive_cap_rejected_and_none_disables(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_label_values=0)
        registry = MetricsRegistry(max_label_values=None)
        counter = registry.counter("unbounded_total", labelnames=("entity",))
        for index in range(2000):
            counter.inc(f"e{index}")
        assert len(counter.cells) == 2000


class TestExposition:
    def test_render_is_parseable_prometheus_text(self):
        _, events = traced_run(quick_config())
        text = render_prometheus(feed_registry(events))
        assert text.endswith("\n")
        typed: dict[str, str] = {}
        for line in text.strip().split("\n"):
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split(" ", 3)
                typed[name] = kind
                continue
            if line.startswith("#"):
                continue
            # Every sample line: name{labels} value — value parses float.
            name_part, _, value = line.rpartition(" ")
            float(value)
            bare = name_part.split("{")[0]
            family = bare
            for suffix in ("_bucket", "_sum", "_count"):
                if bare.endswith(suffix) and bare[: -len(suffix)] in typed:
                    family = bare[: -len(suffix)]
            assert family in typed, line
        assert typed["repro_events_total"] == "counter"
        assert typed["repro_span_duration_seconds"] == "histogram"

    def test_metrics_server_serves_scrapes(self):
        async def scenario():
            registry = MetricsRegistry()
            registry.counter("repro_events_total", labelnames=("type",)).inc("x")
            server = MetricsServer(registry, port=0)
            await server.start()
            url = f"http://127.0.0.1:{server.port}/metrics"
            body, content_type = await asyncio.to_thread(self._get, url)
            missing = await asyncio.to_thread(self._status, f"http://127.0.0.1:{server.port}/nope")
            await server.stop()
            return body, content_type, missing, server.scrapes

        body, content_type, missing, scrapes = asyncio.run(scenario())
        assert 'repro_events_total{type="x"} 1' in body
        assert content_type == CONTENT_TYPE
        assert missing == 404
        assert scrapes == 1

    @staticmethod
    def _get(url: str) -> tuple[str, str]:
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.read().decode("utf-8"),
                response.headers.get("Content-Type", ""),
            )

    @staticmethod
    def _status(url: str) -> int:
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                return response.status
        except urllib.error.HTTPError as error:
            return error.code


class TestGzipTraces:
    def test_jsonl_gz_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        config = quick_config(duration=10.0, trace_path=str(path))
        Experiment(config).run()
        with gzip.open(path, "rb") as handle:
            assert handle.read(1)  # decompresses: actually gzip
        events = read_trace(path)
        assert events[0]["type"] == "run.meta"
        assert events[-1]["type"] == "run.end"
        assert audit_events(events).ok

    def test_plain_and_gz_traces_identical(self, tmp_path):
        plain, gz = tmp_path / "a.jsonl", tmp_path / "b.jsonl.gz"
        # Separate processes would share request-id counters; same
        # process means the second run numbers ids differently, so
        # compare event-type histograms, not raw bytes.
        Experiment(quick_config(duration=10.0, trace_path=str(plain))).run()
        Experiment(quick_config(duration=10.0, trace_path=str(gz))).run()
        from collections import Counter

        histogram = lambda events: Counter(e["type"] for e in events)  # noqa: E731
        assert histogram(read_trace(plain)) == histogram(read_trace(gz))


class TestFaultEvents:
    def _fault_run(self, faults):
        return traced_run(
            quick_config(duration=20.0, faults=tuple(faults))
        )

    def test_crash_and_recover_traced(self):
        _, events = self._fault_run([
            RegionFault(5.0, "crash", (Region.US_WEST1,)),
            RegionFault(10.0, "recover", (Region.US_WEST1,)),
        ])
        crashes = [e for e in events if e["type"] == "fault.crash"]
        recovers = [e for e in events if e["type"] == "fault.recover"]
        assert crashes and recovers
        assert any("us-west1" in e["targets"] for e in crashes)
        rows = fault_rows(events)
        assert any(row[1] == "crash" for row in rows)

    def test_partition_and_heal_traced(self):
        from repro.net.regions import PAPER_REGIONS

        groups = (tuple(PAPER_REGIONS[:1]), tuple(PAPER_REGIONS[1:]))
        _, events = self._fault_run([
            RegionFault(5.0, "partition", groups=groups),
            RegionFault(10.0, "heal"),
        ])
        partitions = [e for e in events if e["type"] == "fault.partition"]
        heals = [e for e in events if e["type"] == "fault.heal"]
        assert partitions and heals
        assert "|" in partitions[0]["groups"]

    def test_summary_has_invariant_rows(self):
        _, events = traced_run(quick_config())
        rows = invariant_rows(events)
        assert rows and rows[0][0] == "checks recorded"
