"""Tests for the from-scratch NumPy LSTM.

The gradient check is the load-bearing test: it verifies the entire BPTT
implementation against numerical differentiation.
"""

import math

import numpy as np
import pytest

from repro.prediction.lstm import AdamOptimizer, LstmNetwork, LstmPredictor, TimeFeatures


class TestTimeFeatures:
    def test_width(self):
        assert TimeFeatures([10]).width == 2
        assert TimeFeatures([10, 70]).width == 4

    def test_periodicity(self):
        features = TimeFeatures([10])
        assert np.allclose(features.encode(3), features.encode(13))
        assert not np.allclose(features.encode(3), features.encode(4))

    def test_unit_circle(self):
        vector = TimeFeatures([7]).encode(5)
        assert vector[0] ** 2 + vector[1] ** 2 == pytest.approx(1.0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            TimeFeatures([0])


class TestGradients:
    def test_bptt_matches_numerical_gradients(self):
        rng = np.random.RandomState(0)
        network = LstmNetwork(input_size=3, hidden_size=4, rng=rng)
        inputs = rng.randn(5, 2, 3)  # 5 steps, batch 2
        targets = rng.randn(2)

        def loss():
            predictions, _ = network.forward(inputs)
            error = predictions - targets
            return float(error @ error)

        predictions, caches = network.forward(inputs)
        d_pred = 2.0 * (predictions - targets)
        grads = network.backward(inputs, caches, d_pred)

        epsilon = 1e-5
        for key in network.params:
            flat = network.params[key].reshape(-1)
            for index in rng.choice(flat.size, size=min(6, flat.size), replace=False):
                original = flat[index]
                flat[index] = original + epsilon
                upper = loss()
                flat[index] = original - epsilon
                lower = loss()
                flat[index] = original
                numeric = (upper - lower) / (2 * epsilon)
                analytic = grads[key].reshape(-1)[index]
                assert analytic == pytest.approx(numeric, rel=1e-3, abs=1e-6), key


class TestAdam:
    def test_descends_a_quadratic(self):
        params = {"x": np.array([10.0])}
        optimizer = AdamOptimizer(lr=0.5)
        for _ in range(200):
            grads = {"x": 2.0 * params["x"]}
            optimizer.step(params, grads)
        assert abs(params["x"][0]) < 0.1


class TestLstmPredictor:
    def test_learns_a_sine_wave(self):
        series = [50.0 + 30.0 * math.sin(2 * math.pi * i / 16) for i in range(400)]
        predictor = LstmPredictor(
            window=16, hidden_size=8, epochs=30, periods=(16,), seed=1,
            learning_rate=0.01,
        )
        predictor.fit(series[:320])
        errors = []
        for actual in series[320:]:
            errors.append(abs(predictor.forecast() - actual))
            predictor.update(actual)
        assert sum(errors) / len(errors) < 6.0  # amplitude is 30

    def test_training_loss_decreases(self):
        series = [50.0 + 30.0 * math.sin(2 * math.pi * i / 16) for i in range(300)]
        predictor = LstmPredictor(window=16, hidden_size=8, epochs=10, periods=(16,), seed=1)
        predictor.fit(series)
        assert predictor.training_losses[-1] < predictor.training_losses[0]

    def test_deterministic_for_seed(self):
        series = [float(i % 7) for i in range(120)]
        a = LstmPredictor(window=8, hidden_size=4, epochs=2, periods=(7,), seed=3)
        b = LstmPredictor(window=8, hidden_size=4, epochs=2, periods=(7,), seed=3)
        a.fit(series)
        b.fit(series)
        assert a.forecast() == b.forecast()

    def test_forecast_never_negative(self):
        series = [0.1] * 100
        predictor = LstmPredictor(window=8, hidden_size=4, epochs=2, periods=(7,), seed=3)
        predictor.fit(series)
        assert predictor.forecast() >= 0.0

    def test_untrained_falls_back_to_random_walk(self):
        predictor = LstmPredictor(window=8)
        predictor.update(12.0)
        assert predictor.forecast() == 12.0

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            LstmPredictor(window=32).fit([1.0] * 10)
