"""Tests for the enterprise hierarchy accounting layer (Fig. 1)."""

import pytest

from repro.core.hierarchy import (
    OrgHierarchy,
    OrgNode,
    TeamOperation,
    compile_team_operations,
)
from repro.core.requests import RequestKind


def ecommerce():
    """The paper's Fig. 1 example: eCommerce.com with two departments."""
    return OrgHierarchy(
        OrgNode(
            "eCommerce.com",
            [
                OrgNode("retail", [OrgNode("clothing"), OrgNode("electronics")]),
                OrgNode("platform", [OrgNode("search"), OrgNode("payments")]),
            ],
        )
    )


class TestStructure:
    def test_teams_are_the_leaves(self):
        hierarchy = ecommerce()
        assert {team.name for team in hierarchy.teams()} == {
            "clothing", "electronics", "search", "payments",
        }

    def test_path_to_root(self):
        hierarchy = ecommerce()
        assert hierarchy.path_to_root("clothing") == [
            "clothing", "retail", "eCommerce.com",
        ]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            OrgHierarchy(OrgNode("root", [OrgNode("a"), OrgNode("a")]))

    def test_unknown_node_lookup(self):
        with pytest.raises(KeyError):
            ecommerce().node("warehouse")


class TestAccounting:
    def test_acquire_percolates_to_root(self):
        hierarchy = ecommerce()
        hierarchy.record_acquire("clothing", 10)
        hierarchy.record_acquire("payments", 4)
        report = hierarchy.usage_report()
        assert report["clothing"] == 10
        assert report["retail"] == 10
        assert report["platform"] == 4
        assert report["eCommerce.com"] == 14
        hierarchy.check_rollup()

    def test_release_percolates_too(self):
        hierarchy = ecommerce()
        hierarchy.record_acquire("clothing", 10)
        hierarchy.record_release("clothing", 3)
        assert hierarchy.usage_report()["eCommerce.com"] == 7
        hierarchy.check_rollup()

    def test_team_cannot_release_more_than_it_holds(self):
        hierarchy = ecommerce()
        hierarchy.record_acquire("search", 2)
        with pytest.raises(ValueError):
            hierarchy.record_release("search", 3)

    def test_only_teams_consume(self):
        hierarchy = ecommerce()
        with pytest.raises(ValueError):
            hierarchy.record_acquire("retail", 1)

    def test_amount_validation(self):
        hierarchy = ecommerce()
        with pytest.raises(ValueError):
            hierarchy.record_acquire("clothing", 0)
        with pytest.raises(ValueError):
            hierarchy.record_release("clothing", -1)

    def test_rollup_check_catches_corruption(self):
        hierarchy = ecommerce()
        hierarchy.record_acquire("clothing", 5)
        hierarchy.node("retail").usage = 99
        with pytest.raises(AssertionError):
            hierarchy.check_rollup()


class TestCompilation:
    def test_team_ops_become_root_entity_ops(self):
        hierarchy = ecommerce()
        team_ops = [
            TeamOperation(2.0, "clothing", RequestKind.ACQUIRE, 3),
            TeamOperation(1.0, "search", RequestKind.ACQUIRE, 1),
        ]
        compiled = compile_team_operations(hierarchy, team_ops)
        assert [pair[0].team for pair in compiled] == ["search", "clothing"]
        assert [pair[1].time for pair in compiled] == [1.0, 2.0]
        assert all(pair[1].kind is RequestKind.ACQUIRE for pair in compiled)

    def test_unknown_team_rejected(self):
        hierarchy = ecommerce()
        with pytest.raises(ValueError):
            compile_team_operations(
                hierarchy, [TeamOperation(1.0, "warehouse", RequestKind.ACQUIRE)]
            )


class TestEndToEnd:
    def test_hierarchy_over_a_samya_cluster(self):
        """Teams consume against the root quota through a live cluster;
        the hierarchy's root usage matches the cluster's token ledger."""
        from tests.helpers import MiniCluster

        mini = MiniCluster(maximum=300)
        hierarchy = ecommerce()
        team_ops = [
            TeamOperation(1.0 + 0.01 * index, team.name, RequestKind.ACQUIRE, 1)
            for index in range(40)
            for team in [hierarchy.teams()[index % 4]]
        ]
        compiled = compile_team_operations(hierarchy, team_ops)
        client = mini.client_for(mini.site(0).region, [op for _, op in compiled])
        # Attribute grants back to teams as responses arrive.
        by_id = {}
        original_issue = client._issue

        def issue_spy(operation):
            original_issue(operation)

        responses = []
        original = client.on_response

        def spy(response, now):
            responses.append(response)
            original(response, now)

        client.on_response = spy
        mini.run(until=10.0)
        # All 40 granted; attribute them round-robin as issued.
        granted = [r for r in responses if r.status.value == "granted"]
        assert len(granted) == 40
        for index in range(40):
            hierarchy.record_acquire(hierarchy.teams()[index % 4].name, 1)
        assert hierarchy.usage_report()["eCommerce.com"] == 40
        hierarchy.check_rollup()
        # The root usage equals tokens drawn from the cluster.
        assert 300 - mini.cluster.total_tokens_left() == 40
