"""Seed-stability of the paper's headline results.

The benchmarks assert shapes on one seed; these integration tests check
the two load-bearing orderings hold across several seeds on short runs,
so a lucky seed cannot hide a regression.
"""

import pytest

from repro.harness import ExperimentConfig, run_experiment
from repro.workload.trace import TraceConfig

SEEDS = (1, 7, 23)


def quick(system, seed, **overrides):
    defaults = dict(
        system=system,
        duration=60.0,
        seed=seed,
        trace=TraceConfig(days=2.0, seed=seed),
        invariant_interval=15.0,
    )
    defaults.update(overrides)
    return run_experiment(ExperimentConfig(**defaults))


class TestHeadlineAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_samya_dominates_consensus_per_transaction(self, seed):
        samya = quick("samya-majority", seed)
        multipax = quick("multipaxsys", seed)
        assert samya.committed > 5 * multipax.committed, (
            seed, samya.committed, multipax.committed,
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_samya_local_latency_across_seeds(self, seed):
        samya = quick("samya-majority", seed)
        assert samya.latency.p90 < 0.010, (seed, samya.latency.p90)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_conservation_audits_pass_for_both_variants(self, seed):
        for system in ("samya-majority", "samya-star"):
            result = quick(system, seed)
            assert result.invariant_checks > 0
            assert result.tokens_left_total is not None

    def test_identical_config_is_bit_stable(self):
        """The same config twice yields identical committed counts and
        final token placement — full-stack determinism."""
        first = quick("samya-star", 7)
        second = quick("samya-star", 7)
        assert first.committed == second.committed
        assert first.tokens_left_total == second.tokens_left_total
        assert first.redistributions == second.redistributions
