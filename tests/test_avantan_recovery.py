"""Direct unit tests of the Avantan recovery machinery.

These drive the handlers with crafted messages to hit the §4.3.1/§4.3.2
case analysis deterministically, complementing the scenario tests.
"""

from repro.core.avantan.base import Phase, Role
from repro.core.avantan.state import AcceptValue, Ballot
from repro.core.config import AvantanVariant
from repro.core.entity import SiteTokenState
from repro.core.messages import (
    AcceptValueMsg,
    ElectionGetValue,
    ElectionOkValue,
    RecoveryQuery,
    RecoveryReply,
)

from tests.helpers import MiniCluster, acquire_burst, uniform_ops


def make_value(ballot, *site_tokens):
    return AcceptValue(
        value_id=ballot,
        entity_id="VM",
        states=tuple(
            SiteTokenState(name, "VM", left, wanted)
            for name, left, wanted in site_tokens
        ),
    )


def ok_response(ballot, site, tokens_left, accept_val=None, accept_num=None,
                decision=False, applied_ids=(), recently_applied=()):
    return ElectionOkValue(
        ballot=ballot,
        init_val=SiteTokenState(site, "VM", tokens_left, 0),
        accept_val=accept_val,
        accept_num=accept_num,
        decision=decision,
        applied_ids=applied_ids,
        recently_applied=recently_applied,
    )


class TestMajorityValueSelection:
    """Algorithm 1 lines 15-24, fed crafted response sets."""

    def _leader_with_responses(self, mini, responses):
        leader = mini.site(0)
        protocol = leader.protocol
        protocol.trigger()
        ballot = protocol.state.ballot_num
        for src, make in responses.items():
            protocol._on_election_ok(make(ballot), src)
        return protocol

    def test_fresh_value_concatenates_init_vals(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        a, b, c = [site.name for site in mini.sites]
        protocol = self._leader_with_responses(
            mini, {b: lambda bal: ok_response(bal, b, 100)}
        )
        value = protocol.state.accept_val
        assert value is not None
        assert set(value.participants) == {a, b}
        assert value.total_tokens() == 200  # own 100 + b's 100

    def test_orphaned_accept_val_is_re_proposed(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        a, b, c = [site.name for site in mini.sites]
        orphan = make_value(Ballot(1, c), (b, 50, 0), (c, 70, 0))
        protocol = self._leader_with_responses(
            mini,
            {b: lambda bal: ok_response(bal, b, 50, accept_val=orphan,
                                        accept_num=Ballot(1, c))},
        )
        assert protocol.state.accept_val is orphan

    def test_highest_accept_num_wins_between_orphans(self):
        # 5 sites -> majority of 3, so the leader waits for two crafted
        # responses carrying different orphaned values.
        from repro.net.regions import PAPER_REGIONS

        mini = MiniCluster(
            variant=AvantanVariant.MAJORITY, maximum=500, seed=2,
            regions=tuple(PAPER_REGIONS),
        )
        a, b, c, d, e = [site.name for site in mini.sites]
        old = make_value(Ballot(1, b), (b, 10, 0))
        new = make_value(Ballot(2, c), (c, 20, 0))
        leader = mini.site(0).protocol
        leader.trigger()
        ballot = leader.state.ballot_num
        leader._on_election_ok(
            ok_response(ballot, b, 10, accept_val=old, accept_num=Ballot(1, b)), b
        )
        leader._on_election_ok(
            ok_response(ballot, c, 20, accept_val=new, accept_num=Ballot(2, c)), c
        )
        # Lines 19-20: the orphan with the highest AcceptNum is re-proposed.
        assert leader.state.accept_val is new

    def test_decided_response_short_circuits(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        a, b, c = [site.name for site in mini.sites]
        decided = make_value(Ballot(1, c), (b, 50, 0), (c, 70, 0))
        leader = mini.site(0).protocol
        leader.trigger()
        ballot = leader.state.ballot_num
        leader._on_election_ok(
            ok_response(ballot, b, 50, accept_val=decided,
                        accept_num=Ballot(1, c), decision=True),
            b,
        )
        # The decided value was applied and the round finished instantly.
        assert decided.value_id in leader.state.applied
        assert leader.role is Role.IDLE


class TestStaleParticipantResolution:
    def test_stale_responder_excluded_and_backfilled(self):
        # 5 sites: b is stale w.r.t. a value revealed by c — the leader
        # must not pool b's balance, and must send b the decision.
        from repro.core.messages import DecisionMsg
        from repro.net.regions import PAPER_REGIONS

        mini = MiniCluster(
            variant=AvantanVariant.MAJORITY, maximum=500, seed=2,
            regions=tuple(PAPER_REGIONS),
        )
        a, b, c, d, e = [site.name for site in mini.sites]
        decided = make_value(Ballot(1, c), (b, 100, 0), (c, 100, 0))
        leader = mini.site(0).protocol
        sent = []
        original_send = leader._send
        leader._send = lambda dst, payload: (sent.append((dst, payload)),
                                             original_send(dst, payload))
        leader.trigger()
        ballot = leader.state.ballot_num
        leader._on_election_ok(
            ok_response(ballot, b, 100, applied_ids=(), recently_applied=()), b
        )
        leader._on_election_ok(
            ok_response(
                ballot, c, 120,
                applied_ids=(decided.value_id,),
                recently_applied=(decided,),
            ),
            c,
        )
        value = leader.state.accept_val
        assert value is not None
        # b's stale InitVal was excluded from the fresh value...
        assert b not in value.participants
        assert {a, c} <= set(value.participants)
        # ...and b was sent the decision it missed.
        backfills = [
            payload for dst, payload in sent
            if dst == b and isinstance(payload, DecisionMsg)
            and payload.accept_val.value_id == decided.value_id
        ]
        assert backfills

    def test_resolution_applies_missed_value_to_leader(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=300)
        a, b, c = [site.name for site in mini.sites]
        site_a = mini.site(0)
        # A value granting site a different tokens than it thinks it has.
        missed = make_value(Ballot(3, c), (a, 100, 0), (c, 100, 0))
        protocol = site_a.protocol
        protocol.trigger()
        ballot = protocol.state.ballot_num
        protocol._on_election_ok(
            ok_response(
                ballot, b, 100,
                recently_applied=(missed,),
                applied_ids=(missed.value_id,),
            ),
            b,
        )
        # The leader applied the missed value before pooling fresh state.
        assert missed.value_id in protocol.state.applied
        mini.check()


class TestStarRecoveryHandlers:
    def build(self):
        mini = MiniCluster(variant=AvantanVariant.STAR, maximum=300)
        return mini, [site.name for site in mini.sites]

    def test_query_applied_value_reports_decided(self):
        mini, (a, b, c) = self.build()
        site_b = mini.site(1)
        value = make_value(Ballot(2, a), (a, 60, 0), (b, 100, 0))
        site_b.apply_redistribution(value)
        replies = []
        site_b.protocol._send = lambda dst, payload: replies.append(payload)
        site_b.protocol._on_recovery_query(
            RecoveryQuery(Ballot(2, a), value.value_id), c
        )
        assert replies[0].applied and replies[0].decision

    def test_query_held_value_reports_it(self):
        mini, (a, b, c) = self.build()
        site_b = mini.site(1)
        value = make_value(Ballot(2, a), (a, 60, 0), (b, 100, 0))
        site_b.protocol.state.accept_val = value
        replies = []
        site_b.protocol._send = lambda dst, payload: replies.append(payload)
        site_b.protocol._on_recovery_query(
            RecoveryQuery(Ballot(2, a), value.value_id), c
        )
        assert replies[0].accept_val is value and not replies[0].applied

    def test_query_unknown_value_marks_ballot_dead(self):
        mini, (a, b, c) = self.build()
        site_b = mini.site(1)
        ballot = Ballot(5, a)
        replies = []
        site_b.protocol._send = lambda dst, payload: replies.append(payload)
        site_b.protocol._on_recovery_query(RecoveryQuery(ballot, ballot), c)
        assert replies[0].accept_val is None
        assert ballot in site_b.protocol.state.dead_ballots

    def test_recovering_cohort_decides_on_applied_reply(self):
        mini, (a, b, c) = self.build()
        site_b = mini.site(1)
        value = make_value(Ballot(2, a), (a, 60, 0), (b, 100, 0), (c, 100, 0))
        protocol = site_b.protocol
        protocol.state.ballot_num = Ballot(2, a)
        protocol.state.accept_val = value
        protocol.role = Role.COHORT
        protocol.phase = Phase.RECOVERY
        protocol._on_recovery_reply(
            RecoveryReply(Ballot(2, a), value.value_id, None, decision=False, applied=True),
            c,
        )
        assert value.value_id in protocol.state.applied
        assert protocol.role is Role.IDLE
        mini.check()

    def test_recovering_cohort_aborts_on_bottom_reply(self):
        mini, (a, b, c) = self.build()
        site_b = mini.site(1)
        value = make_value(Ballot(2, a), (a, 60, 0), (b, 100, 0), (c, 100, 0))
        protocol = site_b.protocol
        protocol.state.ballot_num = Ballot(2, a)
        protocol.state.accept_val = value
        protocol.role = Role.COHORT
        protocol.phase = Phase.RECOVERY
        tokens_before = site_b.state.tokens_left
        protocol._on_recovery_reply(
            RecoveryReply(Ballot(2, a), value.value_id, None, decision=False, applied=False),
            c,
        )
        # The round is dead: no tokens moved, the ballot is poisoned.
        assert site_b.state.tokens_left == tokens_before
        assert Ballot(2, a) in protocol.state.dead_ballots
        assert protocol.role is Role.IDLE

    def test_recovering_cohort_decides_when_all_other_cohorts_hold_value(self):
        mini, (a, b, c) = self.build()
        site_b = mini.site(1)
        value = make_value(Ballot(2, a), (a, 60, 0), (b, 100, 0), (c, 100, 0))
        protocol = site_b.protocol
        protocol.state.ballot_num = Ballot(2, a)
        protocol.state.accept_val = value
        protocol.role = Role.COHORT
        protocol.phase = Phase.RECOVERY
        protocol._on_recovery_reply(
            RecoveryReply(Ballot(2, a), value.value_id, value, decision=False, applied=False),
            c,
        )
        # c (the only other non-leader participant) holds the value, so
        # the old leader must have stored it everywhere: decide.
        assert value.value_id in protocol.state.applied
        assert protocol.role is Role.IDLE


class TestPrefixReplayIdempotence:
    """At-least-once delivery property: replaying any prefix of the
    envelopes a site received during a real run — twice — must leave the
    Avantan and token state byte-identical, because envelope-level
    ``msg_id`` dedup absorbs every copy before it can take effect."""

    _runs: dict = {}

    @classmethod
    def _recorded_run(cls, variant):
        """One finished run per variant, with every envelope site 0 saw."""
        if variant not in cls._runs:
            mini = MiniCluster(variant=variant, maximum=300, seed=5)
            site = mini.site(0)
            delivered = []
            original = site.on_message

            def recording(message, _original=original, _log=delivered):
                _log.append(message)
                _original(message)

            site.on_message = recording
            for index in range(3):
                mini.client_for(
                    mini.site(index).region,
                    uniform_ops(seed=index, count=300, rate=30),
                )
            mini.run(until=40.0)
            del site.on_message  # stop recording; replays go in directly
            assert delivered, "run delivered nothing to site 0"
            cls._runs[variant] = (mini, site, delivered)
        return cls._runs[variant]

    @staticmethod
    def _fingerprint(site):
        protocol = site.protocol
        return repr(
            (site.state, protocol.state, protocol.role, protocol.phase)
        )

    def test_replaying_any_prefix_twice_is_byte_identical(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=10, deadline=None)
        @given(
            variant=st.sampled_from(
                [AvantanVariant.MAJORITY, AvantanVariant.STAR]
            ),
            fraction=st.floats(0.0, 1.0),
        )
        def check(variant, fraction):
            mini, site, delivered = self._recorded_run(variant)
            before = self._fingerprint(site)
            prefix = delivered[: int(len(delivered) * fraction)]
            for _ in range(2):
                for message in prefix:
                    site.on_message(message)
            assert self._fingerprint(site) == before
            mini.check()

        check()

    def test_full_replay_is_byte_identical(self):
        mini, site, delivered = self._recorded_run(AvantanVariant.MAJORITY)
        before = self._fingerprint(site)
        for message in delivered:
            site.on_message(message)
        assert self._fingerprint(site) == before
        mini.check()


class TestLeaderDuels:
    def test_simultaneous_triggers_converge(self):
        for variant in (AvantanVariant.MAJORITY, AvantanVariant.STAR):
            mini = MiniCluster(variant=variant, maximum=300, seed=8)
            # Every site's client exhausts local supply at the same time.
            for index in range(3):
                mini.client_for(
                    mini.site(index).region, acquire_burst(1.0, 110, spacing=0.001)
                )
            mini.run(until=60.0)
            mini.check()
            for site in mini.sites:
                assert site.protocol.role is Role.IDLE, variant
                assert not site._pending, variant

    def test_repeated_duels_under_load(self):
        mini = MiniCluster(variant=AvantanVariant.MAJORITY, maximum=150, seed=9)
        for index in range(3):
            mini.client_for(
                mini.site(index).region,
                uniform_ops(seed=index, count=800, rate=40, acquire_fraction=0.8),
            )
        mini.run(until=60.0)
        mini.check()
